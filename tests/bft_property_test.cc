// Property-style sweeps over the BFT library (TEST_P): safety and liveness
// under drop-probability x f grids, network jitter seeds, batch-size
// sweeps, Byzantine-mode sweeps, and repeated leader churn.
#include <gtest/gtest.h>

#include <tuple>

#include "tests/bft_harness.h"

namespace ss::bft {
namespace {

using testing::Cluster;
using testing::KvApp;

// ---------------------------------------------------------------------------
// Safety + liveness under lossy replica-to-replica links, swept over
// (f, drop probability). Retransmissions and state transfer must mask the
// losses; all correct replicas must converge to identical state.

class LossSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(LossSweep, ConvergesDespiteReplicaLinkLoss) {
  auto [f, drop_pct] = GetParam();
  ReplicaOptions options;
  options.state_gap_threshold = 8;  // recover stragglers quickly
  Cluster cluster(f, options, /*fault_seed=*/1234 + f * 100 + drop_pct);

  sim::LinkPolicy lossy;
  lossy.drop_prob = drop_pct / 100.0;
  for (ReplicaId a : cluster.group.replica_ids()) {
    for (ReplicaId b : cluster.group.replica_ids()) {
      if (a == b) continue;
      cluster.net.set_policy(crypto::replica_principal(a),
                             crypto::replica_principal(b), lossy);
    }
  }

  ClientOptions client_options;
  client_options.reply_timeout = millis(200);
  client_options.max_retries = 200;
  auto client = cluster.make_client(1, client_options);

  int completed = 0;
  for (int i = 0; i < 15; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(60));

  EXPECT_EQ(completed, 15);
  // Give stragglers time to state-transfer, then check convergence.
  cluster.run_for(seconds(10));
  std::uint64_t max_applied = 0;
  for (auto& app : cluster.apps) {
    max_applied = std::max(max_applied, app->applied());
  }
  EXPECT_GE(max_applied, 15u);
  // Safety: no two replicas disagree on a key they both applied.
  for (auto& app : cluster.apps) {
    for (const auto& [key, value] : app->data()) {
      EXPECT_EQ(value, "v") << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossSweep,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(0, 10, 25)),
    [](const ::testing::TestParamInfo<LossSweep::ParamType>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) + "_drop" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Jitter seeds: arbitrary message reordering between replicas must never
// break agreement (total order is the whole point).

class JitterSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterSweep, TotalOrderSurvivesReordering) {
  Cluster cluster(1, {}, GetParam());
  sim::LinkPolicy jitter;
  jitter.jitter = millis(20);  // up to 20 ms random extra delay per message
  for (ReplicaId a : cluster.group.replica_ids()) {
    for (ReplicaId b : cluster.group.replica_ids()) {
      if (a == b) continue;
      cluster.net.set_policy(crypto::replica_principal(a),
                             crypto::replica_principal(b), jitter);
    }
  }

  auto client_a = cluster.make_client(1);
  auto client_b = cluster.make_client(2);
  int completed = 0;
  for (int i = 0; i < 25; ++i) {
    client_a->invoke_ordered(KvApp::put("shared", "a" + std::to_string(i)),
                             [&](Bytes) { ++completed; });
    client_b->invoke_ordered(KvApp::put("shared", "b" + std::to_string(i)),
                             [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(30));

  EXPECT_EQ(completed, 50);
  EXPECT_TRUE(cluster.apps_converged());
  // All replicas agree on the final (arbitrary but identical) winner.
  std::string winner = cluster.apps[0]->data().at("shared");
  for (auto& app : cluster.apps) {
    EXPECT_EQ(app->data().at("shared"), winner);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Batch-size sweep: any max_batch must yield the same application state.

class BatchSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatchSweep, StateIndependentOfBatching) {
  ReplicaOptions options;
  options.max_batch = GetParam();
  Cluster cluster(1, options);
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    client->invoke_ordered(
        KvApp::put("k" + std::to_string(i % 7), std::to_string(i)),
        [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(10));
  ASSERT_EQ(completed, 40);
  EXPECT_TRUE(cluster.apps_converged());
  // Final state is workload-determined, not batching-determined.
  EXPECT_EQ(cluster.apps[0]->data().at("k4"), "39");
  EXPECT_EQ(cluster.apps[0]->data().at("k0"), "35");
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSweep,
                         ::testing::Values(1u, 2u, 8u, 64u, 256u));

// ---------------------------------------------------------------------------
// Byzantine-mode sweep: a single faulty replica in any mode must not break
// safety or liveness for f = 1.

class ByzantineSweep : public ::testing::TestWithParam<ByzantineMode> {};

TEST_P(ByzantineSweep, OneFaultyReplicaIsMasked) {
  Cluster cluster;
  cluster.replicas[0]->set_byzantine(GetParam());  // the worst spot: leader
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(20));
  EXPECT_EQ(completed, 8);
  // The three correct replicas agree.
  Bytes reference = cluster.apps[1]->snapshot();
  EXPECT_EQ(cluster.apps[2]->snapshot(), reference);
  EXPECT_EQ(cluster.apps[3]->snapshot(), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ByzantineSweep,
    ::testing::Values(ByzantineMode::kSilent, ByzantineMode::kCorruptReplies,
                      ByzantineMode::kCorruptVotes,
                      ByzantineMode::kEquivocate),
    [](const ::testing::TestParamInfo<ByzantineMode>& info) {
      switch (info.param) {
        case ByzantineMode::kSilent:
          return std::string("Silent");
        case ByzantineMode::kCorruptReplies:
          return std::string("CorruptReplies");
        case ByzantineMode::kCorruptVotes:
          return std::string("CorruptVotes");
        case ByzantineMode::kEquivocate:
          return std::string("Equivocate");
        default:
          return std::string("None");
      }
    });

// ---------------------------------------------------------------------------
// Leader churn: crash each leader in turn; every view change must preserve
// the executed prefix and allow progress.

TEST(LeaderChurn, SurvivesSequentialLeaderCrashes) {
  ReplicaOptions options;
  options.state_gap_threshold = 4;  // recovered leaders catch up fast
  Cluster cluster(1, options);
  auto client = cluster.make_client(1);
  int completed = 0;

  // f = 1: only one replica may be down at a time, so recover the previous
  // victim before crashing the next leader.
  ReplicaId previous{UINT32_MAX};
  for (std::uint32_t round = 0; round < 3; ++round) {
    std::uint64_t regency = 0;
    for (auto& replica : cluster.replicas) {
      if (!replica->crashed()) regency = std::max(regency, replica->regency());
    }
    ReplicaId leader = cluster.group.leader_for(regency);
    if (previous.value != UINT32_MAX) {
      cluster.replicas[previous.value]->recover();
      cluster.run_for(seconds(2));
    }
    cluster.replicas[leader.value]->crash();
    previous = leader;

    for (int i = 0; i < 3; ++i) {
      client->invoke_ordered(
          KvApp::put("round" + std::to_string(round), std::to_string(i)),
          [&](Bytes) { ++completed; });
    }
    cluster.run_for(seconds(15));
  }

  EXPECT_EQ(completed, 9);
  EXPECT_TRUE(cluster.apps_converged());
}

// ---------------------------------------------------------------------------
// Recovery churn: a replica repeatedly crashes and recovers while traffic
// flows; each recovery must state-transfer and reconverge.

TEST(RecoveryChurn, RepeatedCrashRecoverReconverges) {
  ReplicaOptions options;
  options.state_gap_threshold = 8;
  Cluster cluster(1, options);
  auto client = cluster.make_client(1);
  int completed = 0;
  int issued = 0;

  for (int round = 0; round < 3; ++round) {
    cluster.replicas[3]->crash();
    for (int i = 0; i < 10; ++i) {
      client->invoke_ordered(
          KvApp::put("k" + std::to_string(issued++), "v"),
          [&](Bytes) { ++completed; });
    }
    cluster.run_for(seconds(5));
    cluster.replicas[3]->recover();
    cluster.run_for(seconds(5));
    EXPECT_EQ(cluster.replicas[3]->last_decided(),
              cluster.replicas[0]->last_decided())
        << "round " << round;
  }

  EXPECT_EQ(completed, 30);
  EXPECT_TRUE(cluster.apps_converged());
  EXPECT_GE(cluster.replicas[3]->stats().state_transfers, 3u);
}

// ---------------------------------------------------------------------------
// Regression: a replica that crashes *through a view change* must adopt the
// new regency on recovery (from f+1 peers' consensus traffic) — otherwise
// it stays deaf to the group forever.

TEST(RecoveryChurn, RecoverAcrossViewChangeRejoins) {
  ReplicaOptions options;
  options.state_gap_threshold = 8;
  Cluster cluster(1, options);
  auto client = cluster.make_client(1);

  // Crash the leader: the others elect regency 1 while 0 is down.
  cluster.replicas[0]->crash();
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(10));
  ASSERT_EQ(completed, 5);
  ASSERT_GE(cluster.replicas[1]->regency(), 1u);

  cluster.replicas[0]->recover();
  // New traffic carries the new regency; the recovered replica must adopt
  // it and catch up.
  for (int i = 5; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(10));
  EXPECT_EQ(completed, 10);
  EXPECT_GE(cluster.replicas[0]->regency(), 1u);
  EXPECT_EQ(cluster.replicas[0]->last_decided(),
            cluster.replicas[1]->last_decided());
  EXPECT_TRUE(cluster.apps_converged());
}

// ---------------------------------------------------------------------------
// Unordered reads always reflect *some* committed prefix (here: final state
// after quiescence equals ordered state), for every replica count.

class ReadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReadSweep, QuiescentReadsMatchOrderedState) {
  Cluster cluster(GetParam());
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("x", "final"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(5));
  ASSERT_TRUE(done);

  std::string read_value;
  bool read_done = false;
  client->invoke_unordered(KvApp::get("x"), [&](Bytes reply) {
    Reader r(reply);
    read_value = r.str();
    read_done = true;
  });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(read_done);
  EXPECT_EQ(read_value, "final");
}

INSTANTIATE_TEST_SUITE_P(FSweep, ReadSweep, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace ss::bft
