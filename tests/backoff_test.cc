// net::AdaptiveTimeout unit coverage (the TCP-style RTO recipe, backoff
// saturation, jitter bounds, determinism) plus cluster-level behavior of
// the adaptive retransmission path in bft::ClientProxy: across a long
// partition the adaptive client retransmits far less than the fixed-period
// baseline, and after the heal its recovery time — helped by the
// first-reply fast reset — is bounded and no worse than fixed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/backoff.h"
#include "tests/bft_harness.h"

namespace ss::net {
namespace {

TEST(AdaptiveTimeout, PreSampleUsesConfiguredInitial) {
  BackoffOptions options;
  options.initial = millis(300);
  AdaptiveTimeout rto(options);
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.rto(), millis(300));
}

TEST(AdaptiveTimeout, FirstSampleSeedsEwmaPerTcpRecipe) {
  BackoffOptions options;
  options.initial = millis(10);  // floor defaults to initial
  options.cap = seconds(10);
  AdaptiveTimeout rto(options);
  rto.on_sample(millis(40));
  // First sample: srtt = rtt, rttvar = rtt/2, rto = srtt + 4*rttvar.
  EXPECT_TRUE(rto.has_sample());
  EXPECT_EQ(rto.srtt(), millis(40));
  EXPECT_EQ(rto.rttvar(), millis(20));
  EXPECT_EQ(rto.rto(), millis(120));
  // Steady identical samples: rttvar decays 3/4 per step, srtt pinned.
  rto.on_sample(millis(40));
  EXPECT_EQ(rto.srtt(), millis(40));
  EXPECT_EQ(rto.rttvar(), millis(15));
  EXPECT_EQ(rto.rto(), millis(100));
}

TEST(AdaptiveTimeout, RtoClampsToFloorAndCap) {
  BackoffOptions options;
  options.initial = millis(300);  // floor = 300ms
  options.cap = millis(500);
  AdaptiveTimeout rto(options);
  rto.on_sample(millis(2));  // srtt+4*rttvar = 6ms, far below the floor
  EXPECT_EQ(rto.rto(), millis(300));
  for (int i = 0; i < 10; ++i) rto.on_sample(millis(400));
  EXPECT_EQ(rto.rto(), millis(500));  // capped
  EXPECT_EQ(rto.samples(), 11u);
}

TEST(AdaptiveTimeout, NegativeSamplesAreIgnored) {
  BackoffOptions options;
  AdaptiveTimeout rto(options);
  rto.on_sample(-millis(5));
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.samples(), 0u);
}

TEST(AdaptiveTimeout, BackoffDoublesAndSaturatesAtCap) {
  BackoffOptions options;
  options.initial = millis(100);
  options.cap = millis(450);
  options.jitter = 0.0;
  AdaptiveTimeout rto(options);
  EXPECT_EQ(rto.delay(0), millis(100));
  EXPECT_EQ(rto.delay(1), millis(200));
  EXPECT_EQ(rto.delay(2), millis(400));
  EXPECT_EQ(rto.delay(3), millis(450));   // capped
  EXPECT_EQ(rto.delay(60), millis(450));  // no overflow at silly levels
}

TEST(AdaptiveTimeout, JitterStaysWithinBoundAndIsDeterministic) {
  BackoffOptions options;
  options.initial = millis(100);
  options.cap = seconds(2);
  options.jitter = 0.1;
  options.seed = 0xB0FF;
  AdaptiveTimeout a(options);
  AdaptiveTimeout b(options);
  bool saw_off_nominal = false;
  for (std::uint32_t level = 0; level < 16; ++level) {
    SimTime nominal = std::min(millis(100) << std::min(level, 30u), seconds(2));
    SimTime da = a.delay(level);
    EXPECT_GE(da, nominal - nominal / 10);
    EXPECT_LE(da, nominal + nominal / 10);
    EXPECT_EQ(da, b.delay(level));  // same seed, same sequence
    if (da != nominal) saw_off_nominal = true;
  }
  EXPECT_TRUE(saw_off_nominal);  // jitter actually does something
}

}  // namespace
}  // namespace ss::net

namespace ss::bft {
namespace {

using testing::Cluster;
using testing::KvApp;

struct PartitionOutcome {
  std::uint64_t retransmissions = 0;
  SimTime recovery = 0;  ///< heal -> last outstanding request completed
  int completed = 0;
};

/// One client against a healthy group, then a long client-side partition
/// with a paced trickle of new requests (the campaign workload shape), then
/// a heal. Deterministic: same seed, same network, only the client's
/// retransmission policy differs.
PartitionOutcome run_partition_scenario(bool adaptive) {
  Cluster cluster(1, {}, 0xACE5);
  ClientOptions client_options;
  client_options.adaptive = adaptive;
  // The fixed baseline burns a retry every 300 ms; keep both policies well
  // clear of the failure cap so the comparison measures timing, not drops.
  client_options.max_retries = 200;
  auto client = cluster.make_client(1, client_options);

  PartitionOutcome out;
  // Warm the RTT estimator while the network is healthy.
  for (int i = 0; i < 5; ++i) {
    client->invoke_ordered(KvApp::put("warm" + std::to_string(i), "v"),
                           [&](Bytes) { ++out.completed; });
    cluster.run_for(millis(200));
  }

  cluster.net.isolate(client->endpoint());
  const std::uint64_t retx_before = client->stats().retransmissions;
  // New requests keep arriving while the client is cut off — each first
  // transmission goes out immediately, so there is always a flight whose
  // reply can trigger the post-heal fast reset.
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("part" + std::to_string(i), "v"),
                           [&](Bytes) { ++out.completed; });
    cluster.run_for(millis(600));
  }
  out.retransmissions = client->stats().retransmissions - retx_before;

  cluster.net.heal(client->endpoint());
  const SimTime healed_at = cluster.loop.now();
  // Traffic does not stop at the heal — the campaign workload keeps
  // writing. The first post-heal request goes out at backoff level 0, and
  // its reply is what fast-resets every backed-off flight.
  client->invoke_ordered(KvApp::put("post", "heal"),
                         [&](Bytes) { ++out.completed; });
  const SimTime deadline = healed_at + seconds(10);
  while (out.completed < 16 && cluster.loop.now() < deadline) {
    cluster.loop.run_until(cluster.loop.now() + millis(5));
  }
  out.recovery = cluster.loop.now() - healed_at;
  return out;
}

TEST(AdaptiveRetransmission, PartitionStormIsSmallerAndRecoveryNoWorse) {
  PartitionOutcome fixed = run_partition_scenario(/*adaptive=*/false);
  PartitionOutcome adaptive = run_partition_scenario(/*adaptive=*/true);

  ASSERT_EQ(fixed.completed, 16);
  ASSERT_EQ(adaptive.completed, 16);

  // Storm reduction: exponential backoff retransmits a fraction of what the
  // fixed 300 ms period sends across a ~6 s partition.
  EXPECT_LT(adaptive.retransmissions, fixed.retransmissions / 2)
      << "adaptive=" << adaptive.retransmissions
      << " fixed=" << fixed.retransmissions;
  EXPECT_GT(fixed.retransmissions, 0u);

  // Post-heal recovery: the first reply fast-resets every backed-off
  // flight, so adaptive recovers within the campaign's 2 s bound and no
  // slower than the fixed baseline (small scheduling slack allowed).
  EXPECT_LE(adaptive.recovery, seconds(2))
      << "adaptive recovery " << adaptive.recovery / millis(1) << "ms";
  EXPECT_LE(adaptive.recovery, fixed.recovery + millis(100))
      << "adaptive=" << adaptive.recovery / millis(1)
      << "ms fixed=" << fixed.recovery / millis(1) << "ms";
}

}  // namespace
}  // namespace ss::bft
