// An equivocating leader through the full replicated deployment: the
// Byzantine leader sends conflicting batches to different peers, so no
// value can gather a WRITE quorum — the correct replicas must vote the
// leader out, keep every operator write live, and deliver only voted truth
// to the HMI.
#include <gtest/gtest.h>

#include <map>

#include "core/replicated_deployment.h"

namespace ss::core {
namespace {

ReplicatedOptions fast_options() {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  options.write_timeout = millis(500);
  return options;
}

TEST(EquivocateTest, LeaderEquivocationIsVotedOut) {
  ReplicatedDeployment system(fast_options());
  ItemId setpoint = system.add_point("plant/setpoint", scada::Variant{100.0});
  system.start();
  system.run_until(millis(200));

  // Replica 0 leads regency 0 and equivocates from the start.
  system.set_byzantine(0, bft::ByzantineMode::kEquivocate);

  std::map<std::uint64_t, scada::WriteStatus> results;
  for (int i = 0; i < 5; ++i) {
    OpId op = system.hmi().write(
        setpoint, scada::Variant{200.0 + i},
        [&results](const scada::WriteResult& result) {
          results[result.ctx.op.value] = result.status;
        });
    (void)op;
    system.run_until(system.loop().now() + millis(300));
  }

  // Give view changes and retries time to settle, then heal the replica.
  system.run_until(seconds(3));
  system.set_byzantine(0, bft::ByzantineMode::kNone);
  system.run_until(seconds(5));

  // The conflicting proposals must have produced at least one view change
  // on every correct replica.
  for (std::uint32_t i = 1; i < system.n(); ++i) {
    EXPECT_GE(system.replica_stats(i).view_changes, 1u)
        << "replica " << i << " never changed view";
  }

  // Every write completed despite the equivocating leader.
  EXPECT_EQ(results.size(), 5u);
  for (const auto& [op, status] : results) {
    EXPECT_EQ(status, scada::WriteStatus::kOk) << "op " << op;
  }
  EXPECT_EQ(system.hmi().pending_writes(), 0u);

  // The field (frontend) holds the last written value exactly once, and the
  // correct masters agree byte-for-byte.
  system.run_until(seconds(6));
  EXPECT_TRUE(system.masters_converged());
  const scada::Item* item = system.frontend().item(setpoint);
  ASSERT_NE(item, nullptr);
  EXPECT_DOUBLE_EQ(item->value.as_double(), 204.0);
}

// The same adversary against the MinBFT engine (2f+1 = 3 replicas). A
// counter-equipped leader cannot sign two prepares for one instance with
// one counter value, so equivocation is *detected* — a correct replica that
// holds prepare A and receives a commit echoing a valid USIG certificate
// for conflicting value B flags it — rather than merely failing to gather
// a quorum. Service must survive it the same way: leader voted out, every
// write completes, masters converge.
TEST(EquivocateTest, MinBftLeaderEquivocationIsDetectedViaUsigCerts) {
  ReplicatedOptions options = fast_options();
  options.group = GroupConfig::for_protocol(Protocol::kMinBft, 1);
  ReplicatedDeployment system(options);
  ASSERT_EQ(system.n(), 3u);
  ItemId setpoint = system.add_point("plant/setpoint", scada::Variant{100.0});
  system.start();
  system.run_until(millis(200));

  system.set_byzantine(0, bft::ByzantineMode::kEquivocate);

  std::map<std::uint64_t, scada::WriteStatus> results;
  for (int i = 0; i < 5; ++i) {
    system.hmi().write(setpoint, scada::Variant{200.0 + i},
                       [&results](const scada::WriteResult& result) {
                         results[result.ctx.op.value] = result.status;
                       });
    system.run_until(system.loop().now() + millis(300));
  }

  system.run_until(seconds(3));
  system.set_byzantine(0, bft::ByzantineMode::kNone);
  system.run_until(seconds(5));

  // At least one correct replica saw the conflicting USIG certificates for
  // one instance and flagged them.
  std::uint64_t detected = 0;
  for (std::uint32_t i = 1; i < system.n(); ++i) {
    detected += system.replica_stats(i).equivocations_detected;
  }
  EXPECT_GE(detected, 1u) << "no replica detected the conflicting certs";

  // The equivocating leader was voted out and every write completed.
  for (std::uint32_t i = 1; i < system.n(); ++i) {
    EXPECT_GE(system.replica_stats(i).view_changes, 1u)
        << "replica " << i << " never changed view";
  }
  EXPECT_EQ(results.size(), 5u);
  for (const auto& [op, status] : results) {
    EXPECT_EQ(status, scada::WriteStatus::kOk) << "op " << op;
  }
  EXPECT_EQ(system.hmi().pending_writes(), 0u);

  system.run_until(seconds(6));
  EXPECT_TRUE(system.masters_converged());
  const scada::Item* item = system.frontend().item(setpoint);
  ASSERT_NE(item, nullptr);
  EXPECT_DOUBLE_EQ(item->value.as_double(), 204.0);
}

}  // namespace
}  // namespace ss::core
