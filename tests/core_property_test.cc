// Property-style sweeps over the full SMaRt-SCADA deployment: replica
// convergence under network jitter and drops, logical-timeout parameter
// sweeps, the parallel-executor feature, and proactive recovery.
#include <gtest/gtest.h>

#include <tuple>

#include "core/replicated_deployment.h"

namespace ss::core {
namespace {

sim::CostModel fast_costs() {
  sim::CostModel costs = sim::CostModel::zero();
  costs.hop_latency = micros(50);
  return costs;
}

ReplicatedOptions fast_options(std::uint64_t seed = 0xFA111) {
  ReplicatedOptions options;
  options.costs = fast_costs();
  options.fault_seed = seed;
  return options;
}

/// Drives a mixed update/write workload and returns true when every HMI
/// write completed.
bool drive_workload(ReplicatedDeployment& system, ItemId sensor, ItemId valve,
                    int rounds) {
  int writes_done = 0;
  int writes_issued = 0;
  for (int round = 0; round < rounds; ++round) {
    system.frontend().field_update(sensor,
                                   scada::Variant{double(round)});
    if (round % 4 == 1) {
      ++writes_issued;
      system.hmi().write(valve, scada::Variant{double(round)},
                         [&](const scada::WriteResult&) { ++writes_done; });
    }
    system.run_until(system.loop().now() + millis(60));
  }
  system.run_until(system.loop().now() + seconds(5));
  return writes_done == writes_issued;
}

// ---------------------------------------------------------------------------
// Convergence under message reordering: all inter-replica links get random
// jitter; the Masters must still end byte-identical, and the HMI must see
// each message exactly once.

class JitterConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterConvergence, MastersStayIdentical) {
  ReplicatedDeployment system(fast_options(GetParam()));
  ItemId sensor = system.add_point("sensor");
  ItemId valve = system.add_point("valve", scada::Variant{0.0});
  system.configure_masters([sensor](scada::ScadaMaster& master) {
    master.handlers(sensor).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 10.0);
  });
  system.start();

  sim::LinkPolicy jitter;
  jitter.jitter = millis(5);
  for (std::uint32_t a = 0; a < system.n(); ++a) {
    for (std::uint32_t b = 0; b < system.n(); ++b) {
      if (a == b) continue;
      system.net().set_policy(crypto::replica_principal(ReplicaId{a}),
                              crypto::replica_principal(ReplicaId{b}), jitter);
    }
  }

  EXPECT_TRUE(drive_workload(system, sensor, valve, 20));
  EXPECT_TRUE(system.masters_converged());
  EXPECT_EQ(system.hmi().counters().updates_received, 20u);
  // Storage histories byte-identical too.
  for (std::uint32_t i = 1; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).storage().chain_digest(),
              system.master(0).storage().chain_digest());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterConvergence,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Convergence under lossy replica links (client/proxy links stay clean so
// the voted outputs are still observable).

class LossyConvergence : public ::testing::TestWithParam<int> {};

TEST_P(LossyConvergence, SystemStaysLiveAndConsistent) {
  ReplicatedOptions options = fast_options(99);
  options.request_timeout = millis(300);
  ReplicatedDeployment system(options);
  ItemId sensor = system.add_point("sensor");
  ItemId valve = system.add_point("valve", scada::Variant{0.0});
  system.start();

  sim::LinkPolicy lossy;
  lossy.drop_prob = GetParam() / 100.0;
  for (std::uint32_t a = 0; a < system.n(); ++a) {
    for (std::uint32_t b = 0; b < system.n(); ++b) {
      if (a == b) continue;
      system.net().set_policy(crypto::replica_principal(ReplicaId{a}),
                              crypto::replica_principal(ReplicaId{b}), lossy);
    }
  }

  EXPECT_TRUE(drive_workload(system, sensor, valve, 16));
  EXPECT_EQ(system.hmi().counters().updates_received, 16u);
}

INSTANTIATE_TEST_SUITE_P(DropPct, LossyConvergence,
                         ::testing::Values(0, 5, 15));

// ---------------------------------------------------------------------------
// Logical-timeout sweep: whatever the timeout value, a cut Frontend reply
// link must resolve every write with kTimeout and leave no pending state.

class TimeoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimeoutSweep, AlwaysResolvesBlockedWrites) {
  ReplicatedOptions options = fast_options();
  options.write_timeout = millis(GetParam());
  ReplicatedDeployment system(options);
  ItemId valve = system.add_point("valve", scada::Variant{0.0});
  system.start();
  system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());

  int timeouts = 0;
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    system.hmi().write(valve, scada::Variant{double(i)},
                       [&](const scada::WriteResult& result) {
                         done = true;
                         if (result.status == scada::WriteStatus::kTimeout) {
                           ++timeouts;
                         }
                       });
    system.run_until(system.loop().now() + millis(GetParam()) * 5 +
                     seconds(2));
    EXPECT_TRUE(done) << "write " << i;
  }
  EXPECT_EQ(timeouts, 3);
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).pending_write_count(), 0u);
  }
  EXPECT_TRUE(system.masters_converged());
}

INSTANTIATE_TEST_SUITE_P(TimeoutsMs, TimeoutSweep,
                         ::testing::Values(100, 400, 1500));

// ---------------------------------------------------------------------------
// Parallel executor (paper §VII-b future work): behaviour must be identical
// to the single-threaded prototype — only the virtual-time cost accounting
// changes. Convergence, voting and ordering all still hold.

class ExecutorSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExecutorSweep, SemanticsIndependentOfExecutorLanes) {
  ReplicatedOptions options = fast_options();
  options.executor_lanes = GetParam();
  ReplicatedDeployment system(options);
  ItemId a = system.add_point("a");
  ItemId b = system.add_point("b");
  ItemId valve = system.add_point("valve", scada::Variant{0.0});
  system.configure_masters([a, b](scada::ScadaMaster& master) {
    master.handlers(a).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 5.0);
    master.handlers(b).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 5.0);
  });
  system.start();

  for (int i = 0; i < 10; ++i) {
    system.frontend().field_update(i % 2 == 0 ? a : b,
                                   scada::Variant{double(i)});
    system.run_until(system.loop().now() + millis(50));
  }
  bool write_done = false;
  system.hmi().write(valve, scada::Variant{1.0},
                     [&](const scada::WriteResult&) { write_done = true; });
  system.run_until(system.loop().now() + seconds(3));

  EXPECT_TRUE(write_done);
  EXPECT_EQ(system.hmi().counters().updates_received, 10u);
  // 6..9 exceed the threshold -> 4 alarms.
  EXPECT_EQ(system.hmi().counters().events_received, 4u);
  EXPECT_TRUE(system.masters_converged());
}

INSTANTIATE_TEST_SUITE_P(Lanes, ExecutorSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------------------------------------------------------------------------
// Proactive recovery (Castro-Liskov style, the intrusion-tolerance practice
// the paper's §I cites): periodically restart each replica in turn; every
// restart wipes volatile state and rejoins via state transfer. The system
// must stay live and consistent throughout.

TEST(ProactiveRecovery, RollingRestartsPreserveServiceAndState) {
  ReplicatedOptions options = fast_options();
  ReplicatedDeployment system(options);
  ItemId sensor = system.add_point("sensor");
  ItemId valve = system.add_point("valve", scada::Variant{0.0});
  system.start();

  int updates_sent = 0;
  int writes_done = 0;
  int writes_issued = 0;
  for (std::uint32_t victim = 0; victim < system.n(); ++victim) {
    system.crash_replica(victim);
    for (int i = 0; i < 5; ++i) {
      system.frontend().field_update(sensor,
                                     scada::Variant{double(updates_sent++)});
      system.run_until(system.loop().now() + millis(80));
    }
    ++writes_issued;
    system.hmi().write(valve, scada::Variant{double(victim)},
                       [&](const scada::WriteResult&) { ++writes_done; });
    system.run_until(system.loop().now() + seconds(8));
    system.recover_replica(victim);
    system.run_until(system.loop().now() + seconds(3));
    EXPECT_EQ(system.replica(victim).last_decided(),
              system.replica((victim + 1) % system.n()).last_decided())
        << "victim " << victim;
  }

  EXPECT_EQ(writes_done, writes_issued);
  EXPECT_EQ(system.hmi().counters().updates_received,
            static_cast<std::uint64_t>(updates_sent));
  EXPECT_TRUE(system.masters_converged());
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_GE(system.replica(i).stats().state_transfers, 1u) << i;
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism across seeds: for any fault seed, two runs with
// that seed give identical master state (the repeatability the DES design
// guarantees and the tests rely on).

class RunDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunDeterminism, IdenticalDigestsAcrossRuns) {
  auto run_once = [&] {
    ReplicatedDeployment system(fast_options(GetParam()));
    ItemId sensor = system.add_point("sensor");
    ItemId valve = system.add_point("valve", scada::Variant{0.0});
    system.configure_masters([sensor](scada::ScadaMaster& master) {
      master.handlers(sensor).emplace<scada::MonitorHandler>(
          scada::MonitorHandler::Condition::kAbove, 3.0);
    });
    system.start();
    drive_workload(system, sensor, valve, 12);
    return system.master(0).state_digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunDeterminism,
                         ::testing::Values(7u, 1234u, 0xDEADBEEFu));

}  // namespace
}  // namespace ss::core
