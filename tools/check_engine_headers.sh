#!/usr/bin/env sh
# Engine headers are internal to src/bft: everything else must select a
# protocol through GroupConfig::protocol + bft::make_engine (engine.h), so
# the SCADA layers never compile against protocol internals. This gate
# keeps the seam honest — it fails if any file outside src/bft includes a
# concrete engine header.
#
# Usage: tools/check_engine_headers.sh [repo-root]
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

offenders=$(grep -rln \
    -e '#include *"bft/engine_pbft\.h"' \
    -e '#include *"bft/engine_minbft\.h"' \
    --include='*.h' --include='*.cc' --include='*.cpp' \
    src tests examples bench 2>/dev/null |
  grep -v '^src/bft/' || true)

if [ -n "$offenders" ]; then
  echo "error: concrete engine headers included outside src/bft:" >&2
  echo "$offenders" >&2
  echo "use bft/engine.h + bft::make_engine (GroupConfig::protocol) instead" >&2
  exit 1
fi
echo "engine header hygiene OK (engine_pbft.h/engine_minbft.h stay in src/bft)"
