// Continuous-fault soak campaigns over the example plants (ROADMAP item 5's
// long-running remainder; ISSUE PR 10's tentpole runner).
//
// A campaign strings minutes of phased fault injection — every scenario
// family plus gray-failure overlays — over one live deployment, with a
// liveness watchdog, between-phase frontier audits, and a bounded post-heal
// recovery check on top of the always-on safety invariants.
//
//   soak_campaign                              # 60 s soak, both plants
//   soak_campaign --plant=power-grid --duration=120 --seed=0x2a
//   SS_PROTOCOL=minbft soak_campaign --plant=both --duration=60
//   soak_campaign --plant=water-pipeline --seed=7 --minimize
//
// Exit status 0 when every invariant held, 1 on violations, 2 on usage
// errors. --dump=FILE writes the flight-recorder tail there on failure, so
// CI can upload it as an artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "common/logging.h"
#include "obs/trace.h"

using namespace ss;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: soak_campaign [--plant=<power-grid|water-pipeline|both>]\n"
      "                     [--protocol=<pbft|minbft>] [--f=<1|2>]\n"
      "                     [--seed=<n|0xHEX>] [--duration=<seconds>]\n"
      "                     [--phase=<ms>] [--watchdog=<ms>]\n"
      "                     [--wedge-at=<ms>] [--dump=<file>] [--minimize]\n"
      "                     [--plan] [--log=info|debug]\n");
  return 2;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

void print_report(const chaos::CampaignReport& report) {
  std::printf("result: %s\n", report.summary().c_str());
  for (const chaos::Violation& v : report.violations) {
    std::printf("  VIOLATION [%s] at t=%lldns: %s\n", v.invariant.c_str(),
                static_cast<long long>(v.at), v.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  chaos::CampaignOptions options;
  if (const char* name = std::getenv("SS_PROTOCOL")) {
    try {
      options.protocol = parse_protocol(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "SS_PROTOCOL: %s\n", e.what());
      return 2;
    }
  }
  bool both = true;  // default: soak both example plants back to back
  bool do_minimize = false;
  bool plan_only = false;
  std::string dump_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    if (arg.rfind("--plant=", 0) == 0) {
      std::string name = value_of("--plant=");
      if (name == "both") {
        both = true;
      } else if (chaos::parse_plant(name, options.plant)) {
        both = false;
      } else {
        std::fprintf(stderr,
                     "unknown plant '%s' (valid: power-grid|water-pipeline|"
                     "both)\n",
                     name.c_str());
        return usage();
      }
    } else if (arg.rfind("--protocol=", 0) == 0) {
      try {
        options.protocol = parse_protocol(value_of("--protocol="));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage();
      }
    } else if (arg.rfind("--f=", 0) == 0) {
      std::uint64_t f = 0;
      if (!parse_u64(value_of("--f="), f) || f == 0) return usage();
      options.f = static_cast<std::uint32_t>(f);
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_u64(value_of("--seed="), options.seed)) return usage();
    } else if (arg.rfind("--duration=", 0) == 0) {
      std::uint64_t secs = 0;
      if (!parse_u64(value_of("--duration="), secs) || secs == 0) {
        return usage();
      }
      options.duration = seconds(static_cast<SimTime>(secs));
    } else if (arg.rfind("--phase=", 0) == 0) {
      std::uint64_t ms = 0;
      if (!parse_u64(value_of("--phase="), ms) || ms == 0) return usage();
      options.phase = millis(static_cast<SimTime>(ms));
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      std::uint64_t ms = 0;
      if (!parse_u64(value_of("--watchdog="), ms) || ms == 0) return usage();
      options.watchdog_window = millis(static_cast<SimTime>(ms));
    } else if (arg.rfind("--wedge-at=", 0) == 0) {
      std::uint64_t ms = 0;
      if (!parse_u64(value_of("--wedge-at="), ms)) return usage();
      options.wedge_at = millis(static_cast<SimTime>(ms));
    } else if (arg.rfind("--dump=", 0) == 0) {
      dump_file = value_of("--dump=");
    } else if (arg == "--minimize") {
      do_minimize = true;
    } else if (arg == "--plan") {
      plan_only = true;
    } else if (arg == "--log=info") {
      Logger::threshold() = LogLevel::kInfo;
    } else if (arg == "--log=debug") {
      Logger::threshold() = LogLevel::kDebug;
    } else {
      return usage();
    }
  }

  std::vector<chaos::Plant> plants;
  if (both) {
    plants = {chaos::Plant::kPowerGrid, chaos::Plant::kWaterPipeline};
  } else {
    plants = {options.plant};
  }

  bool any_violation = false;
  for (chaos::Plant plant : plants) {
    chaos::CampaignOptions run_options = options;
    run_options.plant = plant;
    chaos::CampaignPlan plan = chaos::plan_campaign(run_options);
    std::printf("== %s campaign: %s f=%u seed=0x%llx, %zu phases ==\n%s",
                chaos::plant_name(plant), protocol_name(run_options.protocol),
                run_options.f,
                static_cast<unsigned long long>(run_options.seed),
                plan.phases.size(), plan.describe().c_str());
    if (plan_only) continue;

    obs::FlightRecorder::instance().clear();
    chaos::CampaignReport report = chaos::run_campaign(run_options);
    print_report(report);
    if (!report.ok()) {
      any_violation = true;
      std::printf("repro: %s\n",
                  chaos::campaign_repro_command(run_options).c_str());
      if (!dump_file.empty()) {
        if (std::FILE* out = std::fopen(dump_file.c_str(), "a")) {
          std::fprintf(out, "=== %s campaign seed=0x%llx ===\n",
                       chaos::plant_name(plant),
                       static_cast<unsigned long long>(run_options.seed));
          obs::FlightRecorder::instance().dump(out);
          std::fclose(out);
          std::printf("flight recorder appended to %s\n", dump_file.c_str());
        }
      }
      if (do_minimize) {
        chaos::CampaignMinimizeResult min =
            chaos::minimize_campaign(run_options);
        std::printf("minimized to %zu of %zu actions:\n%s",
                    min.minimal.actions.size(),
                    plan.flatten().actions.size(),
                    min.minimal.describe().c_str());
        std::printf("minimal run: %s\n", min.report.summary().c_str());
      }
    }
  }
  return any_violation ? 1 : 0;
}
