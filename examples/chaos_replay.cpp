// Replays a chaos run from its seed — the tool the swarm's one-line repro
// commands invoke. Prints the generated (or kept-subset) fault script, runs
// it, and reports every invariant violation.
//
//   chaos_replay --family=byzantine --f=1 --seed=0x2a
//   chaos_replay --family=rtu-faults --seed=7 --sabotage=no-timeouts --keep=2
//
// Exit status is 0 when all invariants held, 1 on violations, 2 on usage
// errors — so the tool slots into shell loops and CI scripts directly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "chaos/swarm.h"
#include "common/logging.h"

using namespace ss;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: chaos_replay --family=<%s>\n"
      "                    [--protocol=<pbft|minbft>] [--f=<1|2>]\n"
      "                    [--seed=<n|0xHEX>]\n"
      "                    [--sabotage=no-timeouts] [--keep=i,j,...]\n",
      ss::chaos::family_list().c_str());
  return 2;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 0);  // base 0: accepts 0x...
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  chaos::ChaosOptions options;
  bool have_keep = false;
  bool do_minimize = false;
  std::vector<std::size_t> keep;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    if (arg.rfind("--family=", 0) == 0) {
      if (!chaos::parse_family(value_of("--family="), options.family)) {
        std::fprintf(stderr, "unknown family '%s' (valid: %s)\n",
                     value_of("--family=").c_str(),
                     chaos::family_list().c_str());
        return usage();
      }
    } else if (arg.rfind("--protocol=", 0) == 0) {
      try {
        options.protocol = parse_protocol(value_of("--protocol="));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage();
      }
    } else if (arg.rfind("--f=", 0) == 0) {
      std::uint64_t f = 0;
      if (!parse_u64(value_of("--f="), f) || f == 0) return usage();
      options.f = static_cast<std::uint32_t>(f);
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_u64(value_of("--seed="), options.seed)) return usage();
    } else if (arg.rfind("--sabotage=", 0) == 0) {
      if (value_of("--sabotage=") != "no-timeouts") return usage();
      options.sabotage = chaos::Sabotage::kDisableLogicalTimeouts;
    } else if (arg == "--minimize") {
      do_minimize = true;
    } else if (arg == "--log=info") {
      Logger::threshold() = LogLevel::kInfo;
    } else if (arg == "--log=debug") {
      Logger::threshold() = LogLevel::kDebug;
    } else if (arg.rfind("--keep=", 0) == 0) {
      have_keep = true;
      std::string list = value_of("--keep=");
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        std::uint64_t index = 0;
        if (!parse_u64(list.substr(pos, comma - pos), index)) return usage();
        keep.push_back(static_cast<std::size_t>(index));
        pos = comma + 1;
      }
    } else {
      return usage();
    }
  }

  chaos::ScriptParams params;
  params.group = GroupConfig::for_protocol(options.protocol, options.f);
  params.horizon = options.horizon;
  chaos::FaultScript script =
      chaos::generate_script(options.family, params, options.seed);
  if (have_keep) {
    chaos::FaultScript subset;
    for (std::size_t index : keep) {
      if (index >= script.actions.size()) {
        std::fprintf(stderr, "--keep index %zu out of range (script has %zu "
                     "actions)\n", index, script.actions.size());
        return 2;
      }
      subset.actions.push_back(script.actions[index]);
    }
    script = std::move(subset);
  }

  std::printf("replaying %s\n", chaos::repro_command(options,
              have_keep ? &keep : nullptr).c_str());
  std::printf("script (%zu actions):\n%s\n", script.actions.size(),
              script.describe().c_str());

  chaos::RunReport report = chaos::run_script(options, script);
  std::printf("result: %s\n", report.summary().c_str());
  for (const chaos::Violation& v : report.violations) {
    std::printf("  VIOLATION [%s] at t=%lldns: %s\n", v.invariant.c_str(),
                static_cast<long long>(v.at), v.detail.c_str());
  }
  if (do_minimize && !report.ok()) {
    chaos::MinimizeResult min = chaos::minimize(options);
    std::printf("minimized to %zu actions:\n%s\n", min.minimal.actions.size(),
                min.minimal.describe().c_str());
    std::printf("repro: %s\n", min.repro.c_str());
  }
  return report.ok() ? 0 : 1;
}
