// Intrusion tolerance demo: the reason the paper exists (§I — defenses
// "sometimes fail to prevent more sophisticated threats").
//
// An attacker fully compromises one of the four SCADA Master replicas and
// makes it lie: it corrupts every reply and push it sends. Later the
// current consensus leader crashes outright. The HMI keeps seeing correct,
// f+1-voted values throughout, and the correct Masters stay byte-identical.
#include <cstdio>

#include "core/replicated_deployment.h"

using namespace ss;

namespace {

void report(core::ReplicatedDeployment& scada, ItemId item,
            const char* phase) {
  const scada::Item* mirror = scada.hmi().item(item);
  std::printf("%-34s HMI value=%-8s updates=%-4lu alarms=%-3lu converged=%s\n",
              phase, mirror ? mirror->value.debug_string().c_str() : "none",
              static_cast<unsigned long>(
                  scada.hmi().counters().updates_received),
              static_cast<unsigned long>(
                  scada.hmi().counters().events_received),
              scada.masters_converged() ? "yes" : "no");
}

}  // namespace

int main() {
  core::ReplicatedDeployment scada;
  ItemId flow = scada.add_point("pipeline/flow");
  scada.configure_masters([&](scada::ScadaMaster& master) {
    master.handlers(flow).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 80.0);
  });
  scada.start();

  auto feed = [&](double from, double to) {
    for (double v = from; v <= to; v += 1.0) {
      scada.frontend().field_update(flow, scada::Variant{v});
      scada.run_until(scada.loop().now() + millis(50));
    }
    scada.run_until(scada.loop().now() + seconds(1));
  };

  std::printf("n=4 replicated SCADA Masters, f=1 tolerated\n\n");

  feed(1, 10);
  report(scada, flow, "healthy group:");

  // --- phase 1: a compromised replica lies on every push -------------------
  std::printf("\n>>> attacker compromises replica 2 (corrupts all output)\n");
  scada.set_byzantine(2, bft::ByzantineMode::kCorruptReplies);
  feed(11, 20);
  report(scada, flow, "with lying replica:");
  std::printf("%-34s last voted value is the true one: %s\n", "",
              scada.hmi().item(flow)->value.as_double() == 20.0 ? "yes"
                                                                : "NO");

  // --- phase 2: the lying replica also votes garbage in consensus ----------
  std::printf("\n>>> replica 2 now also corrupts its consensus votes\n");
  scada.set_byzantine(2, bft::ByzantineMode::kCorruptVotes);
  feed(21, 30);
  report(scada, flow, "with vote-corrupting replica:");

  // --- phase 3: the intrusion is cleaned up; then the leader crashes -------
  // (n = 3f+1 with f = 1 tolerates ONE fault at a time: the operators
  // reimage the compromised replica before the next fault arrives.)
  std::printf("\n>>> replica 2 reimaged (honest again); then the consensus "
              "leader (replica 0) crashes\n");
  scada.set_byzantine(2, bft::ByzantineMode::kNone);
  scada.crash_replica(0);
  feed(31, 40);
  report(scada, flow, "after leader crash:");
  std::printf("%-34s new regency on replica 1: %lu (view change ran)\n", "",
              static_cast<unsigned long>(scada.replica(1).regency()));

  // --- phase 4: alarms still fire, writes still work -----------------------
  std::printf("\n>>> flow exceeds the 80.0 alarm threshold\n");
  feed(81, 85);
  report(scada, flow, "over threshold:");

  bool write_ok = false;
  scada.hmi().write(flow, scada::Variant{50.0},
                    [&](const scada::WriteResult& result) {
                      write_ok = result.status == scada::WriteStatus::kOk;
                    });
  scada.run_until(scada.loop().now() + seconds(3));
  std::printf("%-34s operator write completed: %s\n", "",
              write_ok ? "yes" : "NO");

  bool success = scada.hmi().item(flow)->value.as_double() == 85.0 ||
                 scada.hmi().counters().updates_received > 0;
  success = success && write_ok &&
            scada.hmi().counters().events_received >= 5;
  std::printf("\nintrusion tolerated, service continued: %s\n",
              success ? "yes" : "NO");
  return success ? 0 : 1;
}
