// Historian / trend analysis: the value archive in a replicated deployment.
//
// A noisy process variable streams through the BFT pipeline; every replica
// archives the accepted samples with the *agreed* timestamps, so all four
// archives are byte-identical and any single replica can serve trend
// queries through the unordered (read-only) BFT path — here rendered as a
// small ASCII trend chart straight from a replica's archive.
#include <cstdio>
#include <string>

#include "core/replicated_deployment.h"
#include "core/requests.h"
#include "rtu/sensors.h"

using namespace ss;

int main() {
  core::ReplicatedDeployment plant;
  ItemId temperature = plant.add_point("reactor/temperature");
  plant.configure_masters([&](scada::ScadaMaster& master) {
    // Smooth the noisy sensor a little before archiving.
    master.handlers(temperature).emplace<scada::DeadbandHandler>(0.2);
  });
  plant.start();

  // One minute of a drifting, noisy temperature at 5 Hz.
  rtu::SineSignal signal(75.0, 12.0, seconds(40), 1.0);
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    plant.frontend().field_update(
        temperature, scada::Variant{signal.sample(plant.loop().now(), rng)});
    plant.run_until(plant.loop().now() + millis(200));
  }
  plant.run_until(plant.loop().now() + seconds(2));

  // All four replicated archives are identical.
  bool identical = true;
  for (std::uint32_t i = 1; i < plant.n(); ++i) {
    if (plant.master(i).state_digest() != plant.master(0).state_digest()) {
      identical = false;
    }
  }
  std::printf("archived samples per replica: %lu, archives identical: %s\n\n",
              static_cast<unsigned long>(
                  plant.master(0).historian().total_samples()),
              identical ? "yes" : "NO");

  // Query one replica's archive read-only (no agreement round needed).
  Bytes reply = plant.adapter(0).execute_unordered(
      ClientId{1}, core::encode_query(core::QueryKind::kHistoryAggregate,
                                      temperature));
  Reader r(reply);
  std::uint64_t count = r.varint();
  double min = r.f64(), max = r.f64(), mean = r.f64();
  std::printf("aggregate over archive: n=%lu min=%.1f max=%.1f mean=%.1f\n\n",
              static_cast<unsigned long>(count), min, max, mean);

  // ASCII trend of the last 48 samples.
  auto samples = plant.master(0).historian().tail(temperature, 48);
  std::printf("trend (last %zu samples, %.1f..%.1f):\n", samples.size(), min,
              max);
  for (int row = 7; row >= 0; --row) {
    double level = min + (max - min) * (row + 0.5) / 8.0;
    std::string line;
    for (const scada::Sample& sample : samples) {
      double v = sample.value.as_double();
      double bucket = (v - min) / (max - min + 1e-9) * 8.0;
      line += (bucket >= row && bucket < row + 1) ? '*' : ' ';
    }
    std::printf("%7.1f |%s\n", level, line.c_str());
  }
  std::printf("        +%s\n", std::string(samples.size(), '-').c_str());

  return identical && count > 100 ? 0 : 1;
}
