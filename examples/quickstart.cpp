// Quickstart: bring up a Byzantine fault-tolerant SCADA system in ~60 lines.
//
// Builds the full SMaRt-SCADA stack — one HMI + ProxyHMI, one Frontend +
// ProxyFrontend, and n = 3f+1 = 4 replicated SCADA Masters — on the
// deterministic simulator, then pushes one sensor update through Byzantine
// agreement to the HMI and performs one synchronous operator write.
#include <cstdio>

#include "core/replicated_deployment.h"

using namespace ss;

int main() {
  // 1. A replicated deployment tolerating f = 1 Byzantine SCADA Master.
  core::ReplicatedOptions options;           // defaults: n = 4, f = 1
  core::ReplicatedDeployment scada(options);

  // 2. Register data points (they exist on the Frontend and every Master).
  ItemId temperature = scada.add_point("plant/reactor/temperature");
  ItemId setpoint = scada.add_point("plant/reactor/setpoint",
                                    scada::Variant{20.0});

  // 3. Alarm when the temperature exceeds 90 degrees. Handler chains are
  //    replicated state: configure every Master identically.
  scada.configure_masters([&](scada::ScadaMaster& master) {
    master.handlers(temperature)
        .emplace<scada::MonitorHandler>(
            scada::MonitorHandler::Condition::kAbove, 90.0);
  });

  // 4. Subscribe the HMI to everything and let the subscriptions order.
  scada.start();

  // 5. A field update: Frontend -> ProxyFrontend -> Byzantine agreement ->
  //    4 deterministic Masters -> f+1-voted push -> HMI.
  scada.frontend().field_update(temperature, scada::Variant{95.5});
  scada.run_until(scada.loop().now() + seconds(1));

  const scada::Item* mirror = scada.hmi().item(temperature);
  std::printf("HMI sees temperature = %s (quality %s)\n",
              mirror->value.debug_string().c_str(),
              scada::quality_name(mirror->quality));
  for (const scada::Event& event : scada.hmi().event_log()) {
    std::printf("HMI alarm: [%s] %s value=%s\n", event.code.c_str(),
                event.message.c_str(), event.value.debug_string().c_str());
  }

  // 6. A synchronous operator write, through the same agreement pipeline.
  bool done = false;
  scada.hmi().write(setpoint, scada::Variant{42.0},
                    [&](const scada::WriteResult& result) {
                      std::printf("write completed: %s\n",
                                  scada::write_status_name(result.status));
                      done = true;
                    });
  scada.run_until(scada.loop().now() + seconds(1));

  std::printf("frontend setpoint is now %s\n",
              scada.frontend().item(setpoint)->value.debug_string().c_str());
  std::printf("all 4 masters converged: %s\n",
              scada.masters_converged() ? "yes" : "no");
  return done && scada.masters_converged() ? 0 : 1;
}
