// Multi-process SMaRt-SCADA deployment over real UDP sockets.
//
// Launches one OS process per role — n = 3f+1 replicas (each a ProxyMaster:
// BFT replica + Adapter + deterministic SCADA Master), a Frontend (with its
// ProxyFrontend and Modbus field driver), an HMI (with its ProxyHMI), and a
// simulated RTU — all wired through net::SocketTransport and a shared
// name -> host:port config file. The exact component classes that run on
// the deterministic simulator run here unchanged; only the Transport
// backend differs.
//
// Usage:
//   deploy local [--f N] [--base-port P]   orchestrate everything on
//                                          localhost; exits 0 when the HMI
//                                          completes both paper use cases
//     [--supervise]                        restart replica processes that
//                                          die (exponential backoff, bounded
//                                          retries); implies a durable state
//                                          dir so restarts recover from disk
//     [--kill-replica I --kill-after MS]   SIGKILL replica I after MS ms —
//                                          the crash-restart smoke test
//     [--rounds N]                         N extra HMI write rounds, so
//                                          there is load during the window
//     [--campaign SECS]                    rolling-fault soak: the supervisor
//                                          alternates SIGSTOP freezes (gray,
//                                          slow-but-correct replicas) with
//                                          SIGKILL + supervised restart until
//                                          SECS elapse, then heals; the HMI's
//                                          write rounds through and after the
//                                          window are the verdict
//
// Any role dumps its flight recorder to stderr on SIGUSR2 (and metrics +
// flight recorder on SIGUSR1) — inspect a stuck soak without killing it.
//   deploy config --f N --base-port P      print the generated config file
//   deploy replica --id I --f N --config FILE
//   deploy frontend --f N --config FILE
//   deploy hmi --f N --config FILE [--rounds N]
//   deploy rtu --config FILE
//
// With SS_STATE_DIR=<dir> each replica keeps a WAL + checkpoint under
// <dir>/replica-<id> (fsync'd before decisions execute) and recovers from
// it on startup; SS_CHECKPOINT_INTERVAL overrides the checkpoint period.
// With SS_RUNNER=pooled:<N> each replica fans HMAC verify/sign and message
// codec out to N worker threads (core::PooledOrderedRunner); the state
// machine and all sends stay on the poll thread.
//
// The HMI process drives the paper's two §IV-E use cases end-to-end and is
// the deployment's exit status: an Item update (RTU sensor -> Frontend ->
// Byzantine agreement -> voted push -> HMI) and a Write value (HMI ->
// agreement -> Frontend -> RTU -> WriteResult back through agreement).
#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "common/logging.h"
#include "core/adapter.h"
#include "core/nodes.h"
#include "core/proxies.h"
#include "core/replicated_deployment.h"
#include "core/restart_budget.h"
#include "core/runner.h"
#include "core/scada_link.h"
#include "crypto/keychain.h"
#include "net/resolver.h"
#include "net/socket_transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rtu/driver.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"
#include "scada/frontend.h"
#include "scada/hmi.h"
#include "scada/master.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/replica_storage.h"

using namespace ss;

namespace {

// The replicated data points, registered in the same order in every process
// (ids are dense by registration order, so they agree system-wide).
constexpr ItemId kTemperature{1};
constexpr ItemId kSetpoint{2};
const char* kTemperatureName = "plant/reactor/temperature";
const char* kSetpointName = "plant/reactor/setpoint";
const char* kRtuEndpoint = "rtu/0";
const char* kGroupSecret = "smart-scada-secret";

constexpr std::uint16_t kTemperatureReg = 5;
constexpr std::uint16_t kSetpointReg = 7;

volatile sig_atomic_t g_stop = 0;
volatile sig_atomic_t g_snapshot = 0;
volatile sig_atomic_t g_dump = 0;
void handle_stop(int) { g_stop = 1; }
void handle_snapshot(int) { g_snapshot = 1; }
void handle_dump(int) { g_dump = 1; }

/// The one place every role derives its group from: SS_PROTOCOL selects the
/// agreement engine (pbft, the default, runs 3f+1 processes; minbft runs
/// 2f+1), and the environment propagates to spawned children, so `deploy
/// local`, each replica, the frontend, and the HMI all agree on n without
/// any extra plumbing.
GroupConfig group_from_env(std::uint32_t f) {
  Protocol protocol = Protocol::kPbft;
  if (const char* name = std::getenv("SS_PROTOCOL")) {
    protocol = parse_protocol(name);
  }
  return GroupConfig::for_protocol(protocol, f);
}

void install_stop_handler() {
  struct sigaction sa{};
  sa.sa_handler = handle_stop;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = handle_snapshot;
  sigaction(SIGUSR1, &sa, nullptr);
  // SIGUSR2: on-demand flight-recorder dump — inspect a stuck soak without
  // killing the process (the dump happens on the observability poll).
  sa.sa_handler = handle_dump;
  sigaction(SIGUSR2, &sa, nullptr);
}

void crash_dump(int sig) {
  // Not async-signal-safe, but the process is going down anyway: a
  // best-effort dump of the flight recorder is worth far more than a silent
  // core. Default disposition is restored before re-raising so the exit
  // status still reflects the crash.
  obs::FlightRecorder::instance().dump(stderr);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_crash_handlers() {
  struct sigaction sa{};
  sa.sa_handler = crash_dump;
  sigaction(SIGSEGV, &sa, nullptr);
  sigaction(SIGABRT, &sa, nullptr);
  sigaction(SIGBUS, &sa, nullptr);
}

/// With SS_TRACE_DIR set (run_local sets it for every child), writes this
/// process's completed spans to <dir>/trace-<tag>.jsonl on the way out; the
/// orchestrator merges the per-process files into one op timeline.
void dump_traces(const std::string& tag) {
  const char* dir = std::getenv("SS_TRACE_DIR");
  if (dir == nullptr) return;
  std::string file = tag;
  std::replace(file.begin(), file.end(), '/', '-');
  std::string path = std::string(dir) + "/trace-" + file + ".jsonl";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return;
  obs::Tracer::instance().dump_jsonl(out);
  std::fclose(out);
}

/// Scope guard: dumps traces and detaches the tracer clock on every exit
/// path of a role (normal return, HMI failure return, exception unwind).
struct ObsTeardown {
  std::string tag;
  ~ObsTeardown() {
    dump_traces(tag);
    obs::Tracer::instance().set_clock(nullptr);
  }
};

/// Per-role observability: tracer clock on the transport, log capture into
/// the flight recorder, crash dump handlers, a SIGUSR1-triggered metrics
/// snapshot, and (with SS_METRICS_PERIOD=N) a periodic JSON metrics dump.
void setup_observability(net::SocketTransport& transport,
                         const std::string& tag) {
  obs::Tracer::instance().set_clock([&transport] { return transport.now(); });
  obs::FlightRecorder::instance().capture_logs();
  install_crash_handlers();

  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&transport, tag, poll] {
    if (g_snapshot) {
      g_snapshot = 0;
      std::fprintf(stderr, "[%s] metrics snapshot: ", tag.c_str());
      obs::Registry::instance().dump_json(stderr);
      std::fputc('\n', stderr);
      obs::FlightRecorder::instance().dump(stderr);
    }
    if (g_dump) {
      g_dump = 0;
      std::fprintf(stderr, "[%s] flight recorder (SIGUSR2):\n", tag.c_str());
      obs::FlightRecorder::instance().dump(stderr);
    }
    transport.schedule(millis(250), *poll);
  };
  transport.schedule(millis(250), *poll);

  if (const char* period = std::getenv("SS_METRICS_PERIOD")) {
    SimTime every = seconds(std::strtol(period, nullptr, 10));
    if (every > 0) {
      auto tick = std::make_shared<std::function<void()>>();
      *tick = [&transport, tag, every, tick] {
        std::fprintf(stderr, "[%s] metrics: ", tag.c_str());
        obs::Registry::instance().dump_json(stderr);
        std::fputc('\n', stderr);
        transport.schedule(every, *tick);
      };
      transport.schedule(every, *tick);
    }
  }
}

/// Every endpoint name a deployment of n replicas uses, mapped to
/// consecutive localhost ports.
net::Resolver make_resolver(std::uint32_t n, const std::string& host,
                            std::uint16_t base) {
  net::Resolver r;
  std::uint16_t port = base;
  for (std::uint32_t i = 0; i < n; ++i) {
    r.add(crypto::replica_principal(ReplicaId{i}),
          net::SocketAddress{host, port++});
    r.add("adapter/" + std::to_string(i), net::SocketAddress{host, port++});
    r.add(crypto::client_principal(ClientId{core::kAdapterClientBase + i}),
          net::SocketAddress{host, port++});
  }
  for (const char* name :
       {core::kHmiEndpoint, core::kFrontendEndpoint, core::kProxyHmiEndpoint,
        core::kProxyFrontendEndpoint, "frontend/driver", kRtuEndpoint}) {
    r.add(name, net::SocketAddress{host, port++});
  }
  r.add(crypto::client_principal(ClientId{core::kProxyHmiClient}),
        net::SocketAddress{host, port++});
  r.add(crypto::client_principal(ClientId{core::kProxyFrontendClient}),
        net::SocketAddress{host, port++});
  return r;
}

net::SocketTransport make_transport(const std::string& config) {
  return net::SocketTransport(net::Resolver::from_file(config),
                              net::socket_options_from_env());
}

void serve(net::SocketTransport& transport) {
  transport.set_interrupt_check([] { return g_stop != 0; });
  transport.run();
}

/// With SS_DEPLOY_STATS set, prints transport counters every 2 s (debug aid
/// for multi-process runs, where no single process sees the whole picture).
void arm_stats_heartbeat(net::SocketTransport& transport, const char* tag,
                         const std::function<std::string()>& extra = {}) {
  if (std::getenv("SS_DEPLOY_STATS") == nullptr) return;
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&transport, tag, extra, tick] {
    const net::SocketStats& s = transport.stats();
    std::fprintf(stderr,
                 "[%s] sent=%llu recv=%llu delivered=%llu decode_err=%llu "
                 "unresolved=%llu misdirected=%llu send_err=%llu%s\n",
                 tag, (unsigned long long)s.messages_sent,
                 (unsigned long long)s.datagrams_received,
                 (unsigned long long)s.messages_delivered,
                 (unsigned long long)s.decode_errors,
                 (unsigned long long)s.unresolved_drops,
                 (unsigned long long)s.misdirected,
                 (unsigned long long)s.send_errors,
                 extra ? (" " + extra()).c_str() : "");
    transport.schedule(seconds(2), *tick);
  };
  transport.schedule(seconds(2), *tick);
}

// ---------------------------------------------------------------------------
// Roles

int run_replica(const std::string& config, GroupConfig group,
                std::uint32_t id) {
  install_stop_handler();
  net::SocketTransport transport = make_transport(config);
  crypto::Keychain keys(kGroupSecret);

  scada::MasterOptions master_options;
  master_options.deterministic = true;  // timestamps come from agreement
  scada::ScadaMaster master(std::move(master_options));
  ItemId temperature = master.add_item(kTemperatureName);
  master.add_item(kSetpointName);
  // SS_ALARM_THRESHOLD attaches a Monitor to the temperature point, so the
  // AE subsystem (alarm persisted + EventUpdate pushed to the HMI) is live
  // in socket mode — the fig8b alarm-storm bench drives this path.
  if (const char* threshold = std::getenv("SS_ALARM_THRESHOLD")) {
    master.handlers(temperature)
        .emplace<scada::MonitorHandler>(
            scada::MonitorHandler::Condition::kAbove,
            std::strtod(threshold, nullptr));
  }

  core::AdapterOptions adapter_options;
  adapter_options.write_timeout = millis(800);
  core::Adapter adapter(transport, group, ReplicaId{id}, keys, master,
                        adapter_options);
  adapter.register_client(core::kHmiEndpoint,
                          ClientId{core::kProxyHmiClient});
  adapter.register_client(core::kFrontendEndpoint,
                          ClientId{core::kProxyFrontendClient});

  bft::ReplicaOptions replica_options;  // zero CPU costs: real CPUs are real
  if (const char* interval = std::getenv("SS_CHECKPOINT_INTERVAL")) {
    long parsed = std::strtol(interval, nullptr, 10);
    if (parsed > 0) {
      replica_options.checkpoint_interval = static_cast<std::uint64_t>(parsed);
    }
  }
  // Declared (and with SS_STATE_DIR, constructed) before the replica: the
  // storage must outlive it, and it must be present at construction — the
  // MinBFT engine reads its durable USIG counter lease before the first
  // message, so the deprecated set_storage shim would be too late.
  storage::PosixEnv storage_env;
  std::unique_ptr<storage::ReplicaStorage> storage;
  const char* state_root = std::getenv("SS_STATE_DIR");
  if (state_root != nullptr) {
    const std::string dir =
        std::string(state_root) + "/replica-" + std::to_string(id);
    storage = std::make_unique<storage::ReplicaStorage>(
        storage_env, dir, "storage/replica-" + std::to_string(id));
    replica_options.storage = storage.get();
  }
  bft::Replica replica(transport, group, ReplicaId{id}, keys, adapter,
                       adapter, replica_options);
  adapter.attach_replica(&replica);

  // SS_RUNNER=pooled:<N> fans HMAC/codec work out to N workers; results
  // drain back on the poll thread via the runner's eventfd. Constructed
  // after the replica so its destructor (stop + join workers) runs first —
  // no task can touch the replica once it is gone.
  std::unique_ptr<core::Runner> runner =
      core::make_runner_from_env("replica-" + std::to_string(id));
  replica.set_runner(runner.get());
  if (runner->notify_fd() >= 0) {
    transport.add_pollable(runner->notify_fd(), [&] { runner->drain(); });
    std::fprintf(stderr, "[replica/%u] runner: %u workers\n", id,
                 runner->workers());
  }

  bft::ClientProxy timeout_client(
      transport, group, ClientId{core::kAdapterClientBase + id}, keys);
  adapter.attach_timeout_client(&timeout_client);

  // With SS_STATE_DIR set, every decided batch hits an fsync'd WAL before it
  // executes and checkpoints go to disk; a restarted process rebuilds its
  // state from those files first and only asks the peers for the suffix it
  // missed while down.
  if (storage != nullptr) {
    replica.recover_from_storage();
    // Every process start is a reincarnation: derive fresh session keys by
    // bumping the durable key epoch. Peers accept the previous epoch for a
    // bounded handover window, then reject it — anything signed with keys
    // stolen before this restart stops verifying.
    replica.set_key_epoch(storage->bump_epoch());
    if (replica.last_decided().value > 0) {
      std::fprintf(stderr, "[replica/%u] recovered to cid=%llu from %s\n", id,
                   static_cast<unsigned long long>(replica.last_decided().value),
                   storage->dir().c_str());
    }
    std::fprintf(stderr, "[replica/%u] key epoch %u\n", id,
                 replica.key_epoch());
    replica.request_state_transfer();
  }

  const std::string tag = "replica/" + std::to_string(id);
  setup_observability(transport, tag);
  ObsTeardown teardown{tag};
  std::fprintf(stderr, "[replica/%u] up\n", id);
  arm_stats_heartbeat(transport, ("replica/" + std::to_string(id)).c_str(),
                      [&] {
                        return "decided=" +
                               std::to_string(replica.stats().batches_decided);
                      });
  serve(transport);
  // Graceful TERM: persist the final frontier so the next start replays
  // nothing (and so the orchestrator can audit cross-replica digests).
  if (storage != nullptr) replica.checkpoint_now();
  return 0;
}

int run_frontend(const std::string& config, GroupConfig group) {
  install_stop_handler();
  net::SocketTransport transport = make_transport(config);
  crypto::Keychain keys(kGroupSecret);

  scada::Frontend frontend(scada::FrontendOptions{.instance_id = 1});
  frontend.add_item(kTemperatureName);
  frontend.add_item(kSetpointName, scada::Variant{20.0});

  core::ProxyOptions proxy_options;
  proxy_options.endpoint = core::kProxyFrontendEndpoint;
  proxy_options.component_endpoint = core::kFrontendEndpoint;
  core::ComponentProxy proxy(transport, group,
                             ClientId{core::kProxyFrontendClient}, keys,
                             proxy_options);

  core::FrontendNode node(transport, keys, frontend,
                          core::NodeOptions{
                              .endpoint = core::kFrontendEndpoint,
                              .peer = core::kProxyFrontendEndpoint,
                          });

  rtu::RtuDriver driver(transport, frontend,
                        rtu::DriverOptions{.poll_period = millis(100)});
  driver.bind_sensor(kRtuEndpoint, kTemperatureReg,
                     rtu::RegisterScaling{0.1, 0.0}, kTemperature);
  driver.bind_actuator(kRtuEndpoint, kSetpointReg,
                       rtu::RegisterScaling{0.1, 0.0}, kSetpoint);
  driver.start();

  setup_observability(transport, "frontend");
  ObsTeardown teardown{"frontend"};
  std::fprintf(stderr, "[frontend] up\n");
  arm_stats_heartbeat(transport, "frontend", [&] {
    return "polls=" + std::to_string(driver.counters().polls_sent) +
           " responses=" + std::to_string(driver.counters().poll_responses) +
           " changes=" + std::to_string(driver.counters().changes_reported);
  });
  serve(transport);
  return 0;
}

int run_rtu(const std::string& config) {
  install_stop_handler();
  net::SocketTransport transport = make_transport(config);

  rtu::Rtu rtu(transport, kRtuEndpoint,
               rtu::RtuOptions{.sample_period = millis(100)});
  rtu.add_sensor(kTemperatureReg,
                 std::make_unique<rtu::ConstantSignal>(95.5),
                 rtu::RegisterScaling{0.1, 0.0});
  rtu.add_actuator(kSetpointReg,
                   rtu::RegisterScaling{0.1, 0.0}.to_raw(20.0));
  rtu.start();

  setup_observability(transport, kRtuEndpoint);
  ObsTeardown teardown{kRtuEndpoint};
  std::fprintf(stderr, "[rtu/0] up\n");
  serve(transport);
  return 0;
}

int run_hmi(const std::string& config, GroupConfig group,
            std::uint32_t rounds) {
  install_stop_handler();
  net::SocketTransport transport = make_transport(config);
  crypto::Keychain keys(kGroupSecret);

  scada::Hmi hmi(scada::HmiOptions{.subscriber_name = core::kHmiEndpoint});

  core::ProxyOptions proxy_options;
  proxy_options.endpoint = core::kProxyHmiEndpoint;
  proxy_options.component_endpoint = core::kHmiEndpoint;
  core::ComponentProxy proxy(transport, group, ClientId{core::kProxyHmiClient},
                             keys, proxy_options);

  core::HmiNode node(transport, keys, hmi,
                     core::NodeOptions{
                         .endpoint = core::kHmiEndpoint,
                         .peer = core::kProxyHmiEndpoint,
                     });
  transport.set_interrupt_check([] { return g_stop != 0; });
  setup_observability(transport, "hmi");
  ObsTeardown teardown{"hmi"};

  // Use case 1 — Item update: subscribe, then wait for the RTU's
  // temperature to arrive through Byzantine agreement and the f+1 voter.
  hmi.subscribe_all();
  bool updated = transport.run_until(
      [&] {
        const scada::Item* item = hmi.item(kTemperature);
        return item != nullptr && item->quality == scada::Quality::kGood;
      },
      seconds(30));
  if (!updated) {
    std::fprintf(stderr, "[hmi] FAIL: no item update within 30s\n");
    return 1;
  }
  std::printf("[hmi] item update: temperature = %s\n",
              hmi.item(kTemperature)->value.debug_string().c_str());

  // Use case 2 — Write value: operator write ordered through agreement,
  // executed on the RTU, result voted back.
  bool done = false;
  bool write_ok = false;
  hmi.write(kSetpoint, scada::Variant{42.0},
            [&](const scada::WriteResult& result) {
              done = true;
              write_ok = result.status == scada::WriteStatus::kOk;
            });
  transport.run_until([&] { return done; }, seconds(30));
  if (!done || !write_ok) {
    std::fprintf(stderr, "[hmi] FAIL: write %s\n",
                 done ? "rejected" : "timed out after 30s");
    return 1;
  }
  std::printf("[hmi] write value: setpoint = 42 committed\n");

  // Extra paced write rounds: sustained load for the crash-restart smoke
  // test, where a replica is SIGKILLed and supervised back mid-run. Every
  // round must still commit — f=1 tolerates the one missing replica, and
  // the restarted one rejoins from disk.
  for (std::uint32_t round = 1; round <= rounds; ++round) {
    bool round_done = false;
    bool round_ok = false;
    hmi.write(kSetpoint, scada::Variant{42.0 + round},
              [&](const scada::WriteResult& result) {
                round_done = true;
                round_ok = result.status == scada::WriteStatus::kOk;
              });
    transport.run_until([&] { return round_done; }, seconds(30));
    if (!round_done || !round_ok) {
      std::fprintf(stderr, "[hmi] FAIL: write round %u %s\n", round,
                   round_done ? "rejected" : "timed out after 30s");
      return 1;
    }
    transport.run_until([] { return false; }, millis(250));
  }
  if (rounds > 0) {
    std::printf("[hmi] %u extra write rounds committed\n", rounds);
  }
  std::printf("[hmi] both use cases completed over UDP\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Trace aggregation (orchestrator side)

struct TraceSpan {
  std::uint64_t op = 0;
  std::string stage;
  std::string component;
  long long dur_ns = 0;
};

bool extract_str(const std::string& line, const char* key, std::string& out) {
  std::string needle = std::string("\"") + key + "\":\"";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  std::size_t close = line.find('"', pos);
  if (close == std::string::npos) return false;
  out = line.substr(pos, close - pos);
  return true;
}

bool extract_num(const std::string& line, const char* key, long long& out) {
  std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out = std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

std::vector<TraceSpan> load_trace_dir(const std::string& dir) {
  std::vector<TraceSpan> spans;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return spans;
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind("trace-", 0) != 0) continue;
    std::ifstream in(dir + "/" + name);
    std::string line;
    while (std::getline(in, line)) {
      TraceSpan s;
      long long op = 0;
      if (!extract_num(line, "op", op)) continue;
      if (!extract_str(line, "stage", s.stage)) continue;
      s.op = static_cast<std::uint64_t>(op);
      extract_str(line, "component", s.component);
      extract_num(line, "dur_ns", s.dur_ns);
      spans.push_back(std::move(s));
    }
  }
  ::closedir(d);
  return spans;
}

/// Prints the cross-process timeline of one operator write: the HMI-minted
/// op (instance id 2, the high OpId bits) that traversed the most distinct
/// stages. Per-process clocks are unrelated, so spans are listed in the
/// canonical stage order with per-stage durations rather than merged onto
/// one time axis.
void print_write_timeline(const std::vector<TraceSpan>& spans) {
  static const char* kStageOrder[] = {"hmi",     "agreement", "master",
                                      "adapter", "rtu",       "frontend",
                                      "voter"};
  std::map<std::uint64_t, std::vector<const TraceSpan*>> by_op;
  for (const TraceSpan& s : spans) {
    if ((s.op >> 40) == 2) by_op[s.op].push_back(&s);
  }
  const std::vector<const TraceSpan*>* best = nullptr;
  std::uint64_t best_op = 0;
  std::size_t best_stages = 0;
  for (const auto& [op, list] : by_op) {
    std::vector<std::string> stages;
    for (const TraceSpan* s : list) stages.push_back(s->stage);
    std::sort(stages.begin(), stages.end());
    stages.erase(std::unique(stages.begin(), stages.end()), stages.end());
    if (stages.size() > best_stages) {
      best_stages = stages.size();
      best = &list;
      best_op = op;
    }
  }
  if (best == nullptr) {
    std::printf("deploy: no HMI-minted op traces found\n");
    return;
  }
  std::printf("deploy: write op %llu timeline (%zu spans, %zu stages):\n",
              static_cast<unsigned long long>(best_op), best->size(),
              best_stages);
  for (const char* stage : kStageOrder) {
    for (const TraceSpan* s : *best) {
      if (s->stage != stage) continue;
      std::printf("  %-9s %-18s %9.3f ms\n", stage,
                  s->component.empty() ? "-" : s->component.c_str(),
                  static_cast<double>(s->dur_ns) / 1e6);
    }
  }
}

// ---------------------------------------------------------------------------
// Orchestrator

pid_t spawn(const char* self, const std::vector<std::string>& args) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(self));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv("/proc/self/exe", argv.data());
  std::perror("execv");
  std::_Exit(127);
}

/// Orchestrator-side audit of the durable state the replicas left behind:
/// every replica dir must hold a loadable (CRC-verified) checkpoint, and
/// checkpoints at the same cid must carry the same application digest — the
/// same invariant the chaos engine's checker enforces in simulation. The
/// audit is strictly read-only (load_read_only): when SS_STATE_DIR is kept
/// for inspection, a leftover snapshot.tmp is evidence of an interrupted
/// checkpoint write and must survive the audit.
/// Returns the (possibly demoted) exit code.
int audit_state_dirs(const std::string& root, std::uint32_t n, int code) {
  storage::PosixEnv env;
  std::map<std::uint64_t, std::pair<crypto::Digest, std::uint32_t>> by_cid;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string dir = root + "/replica-" + std::to_string(i);
    storage::CheckpointStore store(env, dir);
    if (env.file_exists(dir + "/snapshot.tmp")) {
      std::printf(
          "deploy: replica/%u left a snapshot.tmp (interrupted checkpoint "
          "write); keeping it for inspection\n",
          i);
    }
    std::optional<storage::Checkpoint> ckpt = store.load_read_only();
    if (!ckpt.has_value()) {
      std::fprintf(stderr,
                   "deploy: replica/%u left no loadable checkpoint under %s\n",
                   i, root.c_str());
      code = 1;
      continue;
    }
    std::printf("deploy: replica/%u on-disk checkpoint cid=%llu\n", i,
                static_cast<unsigned long long>(ckpt->cid.value));
    auto [it, inserted] = by_cid.try_emplace(
        ckpt->cid.value, std::make_pair(ckpt->app_digest, i));
    if (!inserted && it->second.first != ckpt->app_digest) {
      std::fprintf(stderr,
                   "deploy: checkpoint digest divergence at cid=%llu between "
                   "replica/%u and replica/%u\n",
                   static_cast<unsigned long long>(ckpt->cid.value),
                   it->second.second, i);
      code = 1;
    }
  }
  return code;
}

void remove_state_dirs(const std::string& root, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string dir = root + "/replica-" + std::to_string(i);
    for (const char* file : {"/wal", "/wal.tmp", "/snapshot", "/snapshot.tmp"}) {
      ::unlink((dir + file).c_str());
    }
    ::rmdir(dir.c_str());
  }
  ::rmdir(root.c_str());
}

struct SuperviseOptions {
  bool enabled = false;
  int kill_replica = -1;     ///< SIGKILL this replica once...
  long kill_after_ms = 1500; ///< ...this long after launch
  std::uint32_t rounds = 0;  ///< extra HMI write rounds (load for the window)
  long campaign_secs = 0;    ///< --campaign: rolling-fault soak this long
};

int run_local(const char* self, std::uint32_t f, std::uint16_t base_port,
              const SuperviseOptions& sup) {
  const GroupConfig group = group_from_env(f);
  if (base_port == 0) {
    // Derived from the pid so concurrent CI jobs on one host don't collide.
    base_port = static_cast<std::uint16_t>(40000 + (::getpid() % 8000) * 2);
  }

  net::Resolver resolver = make_resolver(group.n, "127.0.0.1", base_port);
  std::string config =
      "/tmp/smart-scada-deploy-" + std::to_string(::getpid()) + ".conf";
  {
    std::ofstream out(config);
    out << resolver.to_text();
  }

  // Each child dumps its spans into this directory at exit; we merge them
  // into one op timeline after the run. An SS_TRACE_DIR inherited from the
  // caller wins (and is left in place for inspection).
  bool own_trace_dir = std::getenv("SS_TRACE_DIR") == nullptr;
  if (own_trace_dir) {
    std::string dir =
        "/tmp/smart-scada-trace-" + std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0755);
    ::setenv("SS_TRACE_DIR", dir.c_str(), 0);
  }
  const std::string trace_dir = std::getenv("SS_TRACE_DIR");

  // Supervision implies durable replicas: a restarted process is only
  // useful if it can come back from disk. An SS_STATE_DIR inherited from
  // the caller wins (and is kept for inspection); otherwise one is created
  // under /tmp and removed after the audit.
  bool own_state_dir = false;
  if (sup.enabled && std::getenv("SS_STATE_DIR") == nullptr) {
    std::string dir = "/tmp/smart-scada-state-" + std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0755);
    ::setenv("SS_STATE_DIR", dir.c_str(), 0);
    own_state_dir = true;
  }
  const char* state_root_env = std::getenv("SS_STATE_DIR");
  const std::string state_root = state_root_env ? state_root_env : "";
  std::printf("deploy: f=%u n=%u base_port=%u config=%s%s%s\n", f, group.n,
              base_port, config.c_str(),
              state_root.empty() ? "" : " state_dir=",
              state_root.c_str());

  const std::string fs = std::to_string(f);
  std::vector<pid_t> background;  // rtu + frontend; replicas tracked below
  background.push_back(spawn(self, {"rtu", "--config", config}));
  std::vector<pid_t> replica_pid(group.n, -1);
  auto spawn_replica = [&](std::uint32_t i) {
    replica_pid[i] = spawn(self, {"replica", "--id", std::to_string(i), "--f",
                                  fs, "--config", config});
  };
  for (std::uint32_t i = 0; i < group.n; ++i) spawn_replica(i);
  background.push_back(spawn(self, {"frontend", "--f", fs, "--config", config}));

  // Give servers a beat to bind before the HMI starts asking questions
  // (requests are retransmitted anyway; this just avoids burning retries).
  ::usleep(300 * 1000);
  std::vector<std::string> hmi_args = {"hmi", "--f", fs, "--config", config};
  if (sup.rounds > 0) {
    hmi_args.push_back("--rounds");
    hmi_args.push_back(std::to_string(sup.rounds));
  }
  pid_t hmi = spawn(self, hmi_args);

  int status = 0;
  if (!sup.enabled) {
    ::waitpid(hmi, &status, 0);
  } else {
    // The supervisor: reap dead replica processes and restart them with
    // exponential backoff (200ms * 2^attempt, at most max_attempts per
    // crash burst — sustained healthy uptime resets the budget, see
    // core::RestartBudget), optionally SIGKILLing one replica on schedule
    // to exercise the crash path. With SS_PROACTIVE_PERIOD=<ms> it also
    // reincarnates one replica per period round-robin (proactive recovery:
    // durable reboot + fresh key epoch), only when the whole group is up,
    // and without charging the restart budget — a scheduled kill is not a
    // crash. The HMI's exit ends the run as before.
    std::vector<core::RestartBudget> budget(group.n);
    for (std::uint32_t i = 0; i < group.n; ++i) budget[i].on_start(0);
    std::vector<long> restart_at_ms(group.n, -1);
    std::vector<bool> proactive_kill(group.n, false);
    // --campaign: rolling process-level faults against the live group —
    // SIGSTOP/SIGCONT freezes (the socket-mode stand-in for a gray,
    // slow-but-correct replica) alternating with SIGKILL + supervised
    // restart, one victim at a time, until the window closes; then every
    // frozen process is resumed and the HMI's remaining write rounds are
    // the post-heal recovery check.
    const long campaign_ms = sup.campaign_secs * 1000;
    long next_campaign_ms = 2000;
    std::uint32_t campaign_phase = 0;
    std::vector<long> stopped_until_ms(group.n, -1);
    long proactive_period_ms = 0;
    if (const char* period = std::getenv("SS_PROACTIVE_PERIOD")) {
      proactive_period_ms = std::strtol(period, nullptr, 10);
    }
    long next_proactive_ms = proactive_period_ms;
    std::uint32_t proactive_next = 0;
    std::uint32_t reincarnations = 0;
    long elapsed_ms = 0;
    bool kill_fired = sup.kill_replica < 0 ||
                      sup.kill_replica >= static_cast<int>(group.n);
    bool hmi_done = false;
    while (!hmi_done) {
      ::usleep(50 * 1000);
      elapsed_ms += 50;
      for (std::uint32_t i = 0; i < group.n; ++i) {
        if (replica_pid[i] > 0) budget[i].note_healthy(elapsed_ms);
      }
      if (!kill_fired && elapsed_ms >= sup.kill_after_ms) {
        kill_fired = true;
        if (replica_pid[sup.kill_replica] > 0) {
          std::printf("deploy: supervisor SIGKILLs replica/%d at %ld ms\n",
                      sup.kill_replica, elapsed_ms);
          ::kill(replica_pid[sup.kill_replica], SIGKILL);
        }
      }
      if (proactive_period_ms > 0 && elapsed_ms >= next_proactive_ms) {
        next_proactive_ms += proactive_period_ms;
        // Only reincarnate with every replica up and no restart pending:
        // the scheduler must never push the group past its fault budget.
        bool all_up = true;
        for (std::uint32_t i = 0; i < group.n; ++i) {
          if (replica_pid[i] <= 0 || restart_at_ms[i] >= 0) all_up = false;
        }
        if (all_up) {
          std::uint32_t victim = proactive_next;
          proactive_next = (proactive_next + 1) % group.n;
          ++reincarnations;
          proactive_kill[victim] = true;
          std::printf(
              "deploy: proactive reincarnation #%u of replica/%u at %ld ms\n",
              reincarnations, victim, elapsed_ms);
          ::kill(replica_pid[victim], SIGKILL);
        }
      }
      if (campaign_ms > 0 && elapsed_ms < campaign_ms &&
          elapsed_ms >= next_campaign_ms) {
        next_campaign_ms += 3000;
        // Inject only with the whole group healthy: one victim at a time
        // keeps the soak within the f-fault budget.
        bool all_up = true;
        for (std::uint32_t i = 0; i < group.n; ++i) {
          if (replica_pid[i] <= 0 || restart_at_ms[i] >= 0 ||
              stopped_until_ms[i] >= 0) {
            all_up = false;
          }
        }
        if (all_up) {
          std::uint32_t victim = campaign_phase % group.n;
          switch (campaign_phase % 3) {
            case 0:
              std::printf("deploy: campaign freezes replica/%u for 800 ms "
                          "at %ld ms\n",
                          victim, elapsed_ms);
              ::kill(replica_pid[victim], SIGSTOP);
              stopped_until_ms[victim] = elapsed_ms + 800;
              break;
            case 1:
              std::printf("deploy: campaign SIGKILLs replica/%u at %ld ms\n",
                          victim, elapsed_ms);
              proactive_kill[victim] = true;  // scheduled, not a crash
              ::kill(replica_pid[victim], SIGKILL);
              break;
            case 2:
              std::printf("deploy: campaign stalls replica/%u for 1500 ms "
                          "at %ld ms\n",
                          victim, elapsed_ms);
              ::kill(replica_pid[victim], SIGSTOP);
              stopped_until_ms[victim] = elapsed_ms + 1500;
              break;
          }
          ++campaign_phase;
        }
      }
      for (std::uint32_t i = 0; i < group.n; ++i) {
        if (stopped_until_ms[i] >= 0 &&
            (elapsed_ms >= stopped_until_ms[i] ||
             (campaign_ms > 0 && elapsed_ms >= campaign_ms))) {
          if (replica_pid[i] > 0) ::kill(replica_pid[i], SIGCONT);
          stopped_until_ms[i] = -1;
        }
      }
      for (std::uint32_t i = 0; i < group.n; ++i) {
        if (restart_at_ms[i] >= 0 && elapsed_ms >= restart_at_ms[i]) {
          restart_at_ms[i] = -1;
          std::printf("deploy: supervisor restarts replica/%u (attempt %u)\n",
                      i, budget[i].attempts());
          spawn_replica(i);
          budget[i].on_start(elapsed_ms);
        }
      }
      int child_status = 0;
      pid_t pid;
      while ((pid = ::waitpid(-1, &child_status, WNOHANG)) > 0) {
        if (pid == hmi) {
          status = child_status;
          hmi_done = true;
          continue;
        }
        for (std::uint32_t i = 0; i < group.n; ++i) {
          if (pid != replica_pid[i]) continue;
          replica_pid[i] = -1;
          if (proactive_kill[i]) {
            // Scheduled reincarnation: short fixed downtime, no budget
            // charge (only real crashes count against it).
            proactive_kill[i] = false;
            restart_at_ms[i] = elapsed_ms + 200;
          } else if (long backoff = budget[i].on_death(elapsed_ms);
                     backoff < 0) {
            std::fprintf(stderr,
                         "deploy: replica/%u died %u times, giving up on it\n",
                         i, budget[i].attempts());
          } else {
            std::printf(
                "deploy: replica/%u %s, restart in %ld ms\n", i,
                WIFSIGNALED(child_status)
                    ? ("killed by signal " +
                       std::to_string(WTERMSIG(child_status)))
                          .c_str()
                    : "exited",
                backoff);
            restart_at_ms[i] = elapsed_ms + backoff;
          }
          break;
        }
      }
    }
    // A SIGSTOPped process never sees the SIGTERM below; resume any
    // leftover freeze before teardown.
    for (std::uint32_t i = 0; i < group.n; ++i) {
      if (stopped_until_ms[i] >= 0 && replica_pid[i] > 0) {
        ::kill(replica_pid[i], SIGCONT);
      }
    }
    if (proactive_period_ms > 0) {
      std::printf("deploy: %u proactive reincarnations completed\n",
                  reincarnations);
    }
  }

  for (pid_t pid : background) ::kill(pid, SIGTERM);
  for (pid_t pid : replica_pid) {
    if (pid > 0) ::kill(pid, SIGTERM);
  }
  for (pid_t pid : background) ::waitpid(pid, nullptr, 0);
  for (pid_t pid : replica_pid) {
    if (pid > 0) ::waitpid(pid, nullptr, 0);
  }
  ::unlink(config.c_str());

  print_write_timeline(load_trace_dir(trace_dir));
  if (own_trace_dir) {
    DIR* d = ::opendir(trace_dir.c_str());
    if (d != nullptr) {
      while (dirent* entry = ::readdir(d)) {
        std::string name = entry->d_name;
        if (name.rfind("trace-", 0) == 0) {
          ::unlink((trace_dir + "/" + name).c_str());
        }
      }
      ::closedir(d);
    }
    ::rmdir(trace_dir.c_str());
  } else {
    std::printf("deploy: per-process traces kept in %s\n", trace_dir.c_str());
  }

  int code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
  if (!state_root.empty()) {
    code = audit_state_dirs(state_root, group.n, code);
    if (own_state_dir) {
      remove_state_dirs(state_root, group.n);
    } else {
      std::printf("deploy: replica state kept in %s\n", state_root.c_str());
    }
  }
  std::printf("deploy: %s\n", code == 0 ? "SUCCESS" : "FAILURE");
  return code;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: deploy local [--f N] [--base-port P] [--supervise]\n"
      "                    [--kill-replica I] [--kill-after MS] [--rounds N]\n"
      "                    [--campaign SECS]  rolling-fault soak: SIGSTOP\n"
      "                                      freezes + SIGKILL/restart cycles\n"
      "                                      until SECS elapse, then heal;\n"
      "                                      the HMI's write rounds are the\n"
      "                                      verdict (implies --supervise)\n"
      "       deploy config [--f N] [--base-port P]\n"
      "       deploy replica --id I [--f N] --config FILE\n"
      "       deploy frontend [--f N] --config FILE\n"
      "       deploy hmi [--f N] --config FILE [--rounds N]\n"
      "       deploy rtu --config FILE\n"
      "env:   SS_STATE_DIR=<dir>            durable replica state (WAL +\n"
      "                                     checkpoints) under <dir>/replica-<id>\n"
      "       SS_CHECKPOINT_INTERVAL=<n>    checkpoint every n decisions\n"
      "       SS_PROACTIVE_PERIOD=<ms>      with --supervise: reincarnate one\n"
      "                                     replica per period round-robin\n"
      "                                     (durable reboot + fresh key epoch)\n"
      "       SS_ALARM_THRESHOLD=<v>        attach a Monitor (alarm above v)\n"
      "                                     to the temperature point\n"
      "       SS_RUNNER=inline|pooled:N|spin:N\n"
      "                                     replica crypto/codec runner: N\n"
      "                                     worker threads for HMAC + codec\n"
      "                                     (default inline, single-threaded)\n"
      "       SS_RX_BATCH=<n>               datagrams per recvmmsg call\n"
      "                                     (default 32; 1 = plain recvfrom)\n"
      "       SS_BUSY_POLL=<us>             spin this long before blocking\n"
      "                                     in poll (default 0 = off)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string role = argv[1];

  if (const char* level = std::getenv("SS_LOG")) {
    if (std::strcmp(level, "trace") == 0) {
      Logger::threshold() = LogLevel::kTrace;
    } else if (std::strcmp(level, "debug") == 0) {
      Logger::threshold() = LogLevel::kDebug;
    } else if (std::strcmp(level, "info") == 0) {
      Logger::threshold() = LogLevel::kInfo;
    }
  }

  std::uint32_t f = 1;
  std::uint32_t id = 0;
  std::uint16_t base_port = 0;
  std::string config;
  SuperviseOptions sup;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--supervise") {  // the only valueless flag
      sup.enabled = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const char* value = argv[++i];
    if (flag == "--f") {
      f = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--id") {
      id = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--base-port") {
      base_port =
          static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--config") {
      config = value;
    } else if (flag == "--kill-replica") {
      sup.kill_replica = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (flag == "--kill-after") {
      sup.kill_after_ms = std::strtol(value, nullptr, 10);
    } else if (flag == "--rounds") {
      sup.rounds =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--campaign") {
      sup.campaign_secs = std::strtol(value, nullptr, 10);
    } else {
      return usage();
    }
  }
  if (sup.campaign_secs > 0) {
    // A campaign is a supervised soak: restarts must work, and the HMI has
    // to keep writing through the whole window (plus a post-heal tail that
    // doubles as the recovery check).
    sup.enabled = true;
    if (sup.rounds == 0) {
      sup.rounds = static_cast<std::uint32_t>(2 * sup.campaign_secs + 8);
    }
  }

  try {
    if (role == "local") return run_local(argv[0], f, base_port, sup);
    if (role == "config") {
      std::fputs(make_resolver(group_from_env(f).n, "127.0.0.1",
                               base_port ? base_port : 47000)
                     .to_text()
                     .c_str(),
                 stdout);
      return 0;
    }
    if (config.empty()) return usage();
    const GroupConfig group = group_from_env(f);
    if (role == "replica") return run_replica(config, group, id);
    if (role == "frontend") return run_frontend(config, group);
    if (role == "hmi") return run_hmi(config, group, sup.rounds);
    if (role == "rtu") return run_rtu(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deploy %s: %s\n", role.c_str(), e.what());
    return 1;
  }
  return usage();
}
