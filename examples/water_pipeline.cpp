// Water-utility pipeline control: a write-heavy scenario exercising the
// Block handler interlocks, RTU write failures, and the logical-timeout
// protocol (paper §IV-D) end to end.
//
// A pump station RTU exposes a pressure sensor and a pump-speed actuator.
// Writes are gated by a Block handler enforcing a safe speed range and an
// operator lock. The demo then makes the RTU swallow a write request —
// without the logical timeout the replicated Masters would block forever on
// the missing WriteResult; with it they synthesize a timeout result and
// stay live.
#include <cstdio>

#include "core/replicated_deployment.h"
#include "rtu/driver.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"

using namespace ss;

namespace {

double now_sec(core::ReplicatedDeployment& plant) {
  return static_cast<double>(plant.loop().now()) / kNanosPerSec;
}

void synchronous_write(core::ReplicatedDeployment& plant, ItemId item,
                       double value, const char* label) {
  bool done = false;
  plant.hmi().write(item, scada::Variant{value},
                    [&](const scada::WriteResult& result) {
                      std::printf("[%6.1fs] %-28s -> %s%s%s\n", now_sec(plant),
                                  label,
                                  scada::write_status_name(result.status),
                                  result.reason.empty() ? "" : ": ",
                                  result.reason.c_str());
                      done = true;
                    });
  // Generous bound: a timed-out write resolves via the logical timeout.
  plant.run_until(plant.loop().now() + seconds(5));
  if (!done) std::printf("[%6.1fs] %-28s -> HUNG (bug!)\n", now_sec(plant), label);
}

}  // namespace

int main() {
  core::ReplicatedOptions options;
  options.write_timeout = millis(800);  // the paper's logical timeout
  core::ReplicatedDeployment plant(options);

  // Field: one pump-station RTU (pressure sensor + pump speed actuator).
  rtu::Rtu station(plant.net(), "rtu/pump-station",
                   rtu::RtuOptions{.sample_period = millis(200)});
  rtu::RegisterScaling bar{0.01, 0.0};    // raw 450 -> 4.50 bar
  rtu::RegisterScaling rpm{1.0, 0.0};
  station.add_sensor(0,
                     std::make_unique<rtu::RandomWalkSignal>(4.5, 0.05, 3.0,
                                                             6.0),
                     bar);
  station.add_actuator(1, /*initial=*/1200);

  ItemId pressure = plant.add_point("pump/pressure");
  ItemId speed = plant.add_point("pump/speed",
                                 scada::Variant{std::int64_t{1200}});

  rtu::RtuDriver driver(plant.net(), plant.frontend(),
                        rtu::DriverOptions{.poll_period = millis(200)});
  driver.bind_sensor(station.endpoint(), 0, bar, pressure);
  driver.bind_actuator(station.endpoint(), 1, rpm, speed);

  // Masters: pump speed writes must stay within [600, 3000] rpm, and an
  // operator lock can block them entirely.
  plant.configure_masters([&](scada::ScadaMaster& master) {
    master.handlers(speed).emplace<scada::BlockHandler>(600.0, 3000.0);
  });

  plant.start();
  station.start();
  driver.start();
  plant.run_until(plant.loop().now() + seconds(2));

  std::printf("--- normal operation ---\n");
  synchronous_write(plant, speed, 1800, "set speed to 1800 rpm");
  std::printf("         rtu speed register: %u rpm\n",
              station.register_value(1));

  std::printf("--- interlock: out-of-range write ---\n");
  synchronous_write(plant, speed, 5000, "set speed to 5000 rpm");

  std::printf("--- RTU device failure ---\n");
  station.fail_next_writes(1);
  synchronous_write(plant, speed, 1500, "set speed to 1500 rpm");

  std::printf("--- attacker drops the WriteResult: logical timeout ---\n");
  plant.net().set_policy(core::kFrontendEndpoint,
                         core::kProxyFrontendEndpoint,
                         sim::LinkPolicy::cut_link());
  synchronous_write(plant, speed, 2000, "set speed to 2000 rpm");
  plant.net().clear_policy(core::kFrontendEndpoint,
                           core::kProxyFrontendEndpoint);
  plant.run_until(plant.loop().now() + seconds(1));
  std::printf("         masters pending writes: %zu (0 = liveness kept)\n",
              plant.master(0).pending_write_count());

  std::printf("--- system still live afterwards ---\n");
  synchronous_write(plant, speed, 2200, "set speed to 2200 rpm");
  std::printf("         rtu speed register: %u rpm\n",
              station.register_value(1));

  std::printf("\nHMI event log (%zu events):\n",
              plant.hmi().event_log().size());
  for (const scada::Event& event : plant.hmi().event_log()) {
    std::printf("  [%s] %s\n", event.code.c_str(), event.message.c_str());
  }
  std::printf("masters converged: %s\n",
              plant.masters_converged() ? "yes" : "no");

  bool ok = station.register_value(1) == 2200 && plant.masters_converged() &&
            plant.master(0).pending_write_count() == 0;
  return ok ? 0 : 1;
}
