// Power-grid monitoring: the paper's motivating domain (§I — SCADA systems
// "monitor and manage the power grid").
//
// Three substation RTUs expose feeder voltages and breaker states over a
// Modbus-like protocol. The Frontend's RTU driver polls them; updates flow
// through the BFT-replicated Masters to the HMI. A Monitor handler raises
// alarms on over-voltage, and the operator trips a breaker through a
// synchronous write that travels Frontend-ward through Byzantine agreement
// and an actual Modbus write to the RTU.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/replicated_deployment.h"
#include "rtu/driver.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"

using namespace ss;

namespace {

struct Feeder {
  std::string name;
  ItemId voltage;
  ItemId breaker;
};

}  // namespace

int main() {
  core::ReplicatedDeployment grid;

  // --- field layer: three substation RTUs --------------------------------
  // Register map per RTU: reg 0 = feeder voltage (x0.01 kV), reg 1 = breaker.
  rtu::RegisterScaling volt_scale{0.01, 0.0};   // raw 23000 -> 230.00 kV
  rtu::RegisterScaling breaker_scale{1.0, 0.0};

  std::vector<std::unique_ptr<rtu::Rtu>> rtus;
  std::vector<Feeder> feeders;
  rtu::RtuDriver driver(grid.net(), grid.frontend(),
                        rtu::DriverOptions{.poll_period = millis(100)});

  for (int i = 0; i < 3; ++i) {
    std::string name = "substation/" + std::to_string(i);
    auto unit = std::make_unique<rtu::Rtu>(
        grid.net(), "rtu/" + std::to_string(i),
        rtu::RtuOptions{.sample_period = millis(100),
                        .seed = 1000u + static_cast<std::uint64_t>(i)});
    // Feeder 2 slowly drifts over the 245 kV alarm limit; the others hover.
    if (i == 2) {
      unit->add_sensor(0, std::make_unique<rtu::RampSignal>(238.0, 1.2),
                       volt_scale);
    } else {
      unit->add_sensor(0,
                       std::make_unique<rtu::SineSignal>(230.0, 4.0,
                                                         seconds(8), 0.5),
                       volt_scale);
    }
    unit->add_actuator(1, /*initial=*/1);  // breaker closed

    Feeder feeder;
    feeder.name = name;
    feeder.voltage = grid.add_point(name + "/voltage");
    feeder.breaker = grid.add_point(name + "/breaker",
                                    scada::Variant{std::int64_t{1}});
    driver.bind_sensor(unit->endpoint(), 0, volt_scale, feeder.voltage);
    driver.bind_actuator(unit->endpoint(), 1, breaker_scale, feeder.breaker);
    feeders.push_back(feeder);
    rtus.push_back(std::move(unit));
  }

  // --- master layer: over-voltage alarms on every feeder ------------------
  grid.configure_masters([&](scada::ScadaMaster& master) {
    for (const Feeder& feeder : feeders) {
      master.handlers(feeder.voltage)
          .emplace<scada::MonitorHandler>(
              scada::MonitorHandler::Condition::kAbove, 245.0,
              scada::Severity::kCritical, /*edge_triggered=*/true);
    }
  });

  grid.start();
  for (auto& unit : rtus) unit->start();
  driver.start();

  // --- run: watch the grid until the drifting feeder alarms ---------------
  bool tripped = false;
  grid.hmi().set_event_callback([&](const scada::EventUpdate& update) {
    const scada::Event& event = update.event;
    std::printf("[%7.1fs] ALARM %-8s item=%u %s value=%s\n",
                static_cast<double>(grid.loop().now()) / kNanosPerSec,
                scada::severity_name(event.severity), event.item.value,
                event.code.c_str(), event.value.debug_string().c_str());
    if (event.code == "MONITOR_TRIGGER" && !tripped) {
      tripped = true;
      // Operator response: trip the breaker of the offending feeder.
      for (const Feeder& feeder : feeders) {
        if (feeder.voltage != event.item) continue;
        std::printf("[%7.1fs] operator trips breaker on %s\n",
                    static_cast<double>(grid.loop().now()) / kNanosPerSec,
                    feeder.name.c_str());
        grid.hmi().write(
            feeder.breaker, scada::Variant{std::int64_t{0}},
            [&grid, feeder](const scada::WriteResult& result) {
              std::printf("[%7.1fs] breaker write on %s: %s\n",
                          static_cast<double>(grid.loop().now()) /
                              kNanosPerSec,
                          feeder.name.c_str(),
                          scada::write_status_name(result.status));
            });
      }
    }
  });

  grid.run_until(seconds(15));

  // --- report --------------------------------------------------------------
  std::printf("\n--- after 15 simulated seconds ---\n");
  for (const Feeder& feeder : feeders) {
    const scada::Item* voltage = grid.hmi().item(feeder.voltage);
    std::printf("%-16s voltage=%-8s breaker(rtu)=%u\n", feeder.name.c_str(),
                voltage ? voltage->value.debug_string().c_str() : "?",
                rtus[&feeder - feeders.data()]->register_value(1));
  }
  std::printf("updates at HMI: %lu, alarms: %lu, masters converged: %s\n",
              static_cast<unsigned long>(grid.hmi().counters().updates_received),
              static_cast<unsigned long>(grid.hmi().counters().events_received),
              grid.masters_converged() ? "yes" : "no");

  bool breaker_open = rtus[2]->register_value(1) == 0;
  std::printf("feeder 2 breaker tripped via BFT pipeline: %s\n",
              breaker_open ? "yes" : "no");
  return tripped && breaker_open && grid.masters_converged() ? 0 : 1;
}
