// Reproduces Figure 8(a): Item-update throughput, NeoSCADA vs SMaRt-SCADA.
//
// Workload (paper §V-A): the Frontend generates 1000 ItemUpdate messages per
// second (the Kirsch et al. country-scale workload, validated by a utility
// as above crisis-level load); the measure is updates delivered to the HMI.
// Paper result: ~1000 ops/s (NeoSCADA) vs ~940 ops/s (SMaRt-SCADA), a 6%
// drop caused by the extra communication steps (3 vs 9) and the
// single-threaded replicated Master.
#include <cstdio>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr double kRate = 1000.0;
constexpr SimTime kWarmup = seconds(2);
constexpr SimTime kMeasure = seconds(20);

struct Result {
  double ops_per_sec = 0;
  std::vector<double> latencies_us;  ///< field_update -> HMI, measure window
};

/// Tracks per-update delivery latency: the tick records the *scheduled*
/// emission time under the update's integer value, the HMI callback looks
/// it up again. Using the scheduled time (not loop.now() at emission) keeps
/// queueing delay ahead of the emit inside the sample — the open-loop
/// coordinated-omission rule (see load/schedule.h).
struct LatencyProbe {
  template <typename System>
  void attach(System& system) {
    loop = &system.loop();
    system.hmi().set_update_callback([this](const scada::ItemUpdate& update) {
      auto index = static_cast<std::size_t>(update.value.as_double());
      if (measuring && index < emitted_at.size()) {
        samples.push_back(
            static_cast<double>(loop->now() - emitted_at[index]) / 1000.0);
      }
    });
  }
  void emit(SimTime scheduled) { emitted_at.push_back(scheduled); }

  sim::EventLoop* loop = nullptr;
  std::vector<SimTime> emitted_at;
  std::vector<double> samples;
  bool measuring = false;
};

Result run_baseline(const sim::CostModel& costs) {
  core::BaselineDeployment system(
      core::BaselineOptions{.costs = costs, .storage_retention = 1024});
  ItemId item = system.add_point("grid/feeder");
  system.start();
  LatencyProbe probe;
  probe.attach(system);

  double value = 0;
  auto tick = [&](SimTime scheduled) {
    probe.emit(scheduled);
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
  };
  drive_open_loop(system.loop(), kRate, kWarmup, tick);
  probe.measuring = true;
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), kRate, kMeasure, tick);
  std::uint64_t after = system.hmi().counters().updates_received;
  return Result{static_cast<double>(after - before) /
                    (static_cast<double>(kMeasure) / kNanosPerSec),
                std::move(probe.samples)};
}

Result run_replicated(const sim::CostModel& costs) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  // Under open-loop overload the queue (not a retransmit storm) must absorb
  // the excess: give the proxies a reply timeout beyond the run length.
  options.client_reply_timeout = seconds(60);
  // Same rationale for the leader-suspect timer: sustained overload must
  // not be misread as a faulty leader (perpetual view changes).
  options.request_timeout = seconds(60);
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("grid/feeder");
  system.start();
  LatencyProbe probe;
  probe.attach(system);

  double value = 0;
  auto tick = [&](SimTime scheduled) {
    probe.emit(scheduled);
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
  };
  drive_open_loop(system.loop(), kRate, kWarmup, tick);
  probe.measuring = true;
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), kRate, kMeasure, tick);
  std::uint64_t after = system.hmi().counters().updates_received;
  return Result{static_cast<double>(after - before) /
                    (static_cast<double>(kMeasure) / kNanosPerSec),
                std::move(probe.samples)};
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();
  print_header("Figure 8(a)", "Update value use case, 1000 ItemUpdate/s");

  reset_observability();
  Result neo = run_baseline(costs);
  std::vector<StageSummary> neo_stages = stage_breakdown();
  reset_observability();
  Result smart = run_replicated(costs);
  std::vector<StageSummary> smart_stages = stage_breakdown();
  print_row("NeoSCADA", neo.ops_per_sec, "ops/s   (paper: ~1000)");
  print_row("SMaRt-SCADA", smart.ops_per_sec, "ops/s   (paper: ~940)");
  std::printf("%-34s %10.1f %%       (paper: ~6%%)\n", "overhead",
              overhead_pct(neo.ops_per_sec, smart.ops_per_sec));
  std::printf("%-34s p50 %.0f us  p99 %.0f us\n", "NeoSCADA latency",
              percentile(neo.latencies_us, 50), percentile(neo.latencies_us, 99));
  std::printf("%-34s p50 %.0f us  p99 %.0f us\n", "SMaRt-SCADA latency",
              percentile(smart.latencies_us, 50),
              percentile(smart.latencies_us, 99));
  print_note("SMaRt-SCADA per-stage breakdown (trace spans):");
  print_stage_breakdown(smart_stages);
  reset_observability();

  // Sensitivity: the shape must survive +/-50% CPU-cost perturbation.
  print_note("sensitivity (CPU costs scaled):");
  for (double scale : {0.5, 1.5}) {
    sim::CostModel scaled = costs.scaled_cpu(scale);
    double neo_s = run_baseline(scaled).ops_per_sec;
    double smart_s = run_replicated(scaled).ops_per_sec;
    std::printf("  x%.1f: NeoSCADA %7.1f  SMaRt-SCADA %7.1f  overhead %5.1f%%\n",
                scale, neo_s, smart_s, overhead_pct(neo_s, smart_s));
  }

  JsonReport json("fig8a_update");
  json.add("neoscada", neo.ops_per_sec, std::move(neo.latencies_us),
           std::move(neo_stages));
  json.add("smart_scada", smart.ops_per_sec, std::move(smart.latencies_us),
           std::move(smart_stages));
  json.write();
  return 0;
}
