// Reproduces Figure 8(a): Item-update throughput, NeoSCADA vs SMaRt-SCADA.
//
// Workload (paper §V-A): the Frontend generates 1000 ItemUpdate messages per
// second (the Kirsch et al. country-scale workload, validated by a utility
// as above crisis-level load); the measure is updates delivered to the HMI.
// Paper result: ~1000 ops/s (NeoSCADA) vs ~940 ops/s (SMaRt-SCADA), a 6%
// drop caused by the extra communication steps (3 vs 9) and the
// single-threaded replicated Master.
#include <cstdio>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr double kRate = 1000.0;
constexpr SimTime kWarmup = seconds(2);
constexpr SimTime kMeasure = seconds(20);

double run_baseline(const sim::CostModel& costs) {
  core::BaselineDeployment system(
      core::BaselineOptions{.costs = costs, .storage_retention = 1024});
  ItemId item = system.add_point("grid/feeder");
  system.start();

  double value = 0;
  auto tick = [&] {
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
  };
  drive_open_loop(system.loop(), kRate, kWarmup, tick);
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), kRate, kMeasure, tick);
  std::uint64_t after = system.hmi().counters().updates_received;
  return static_cast<double>(after - before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

double run_replicated(const sim::CostModel& costs) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  // Under open-loop overload the queue (not a retransmit storm) must absorb
  // the excess: give the proxies a reply timeout beyond the run length.
  options.client_reply_timeout = seconds(60);
  // Same rationale for the leader-suspect timer: sustained overload must
  // not be misread as a faulty leader (perpetual view changes).
  options.request_timeout = seconds(60);
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("grid/feeder");
  system.start();

  double value = 0;
  auto tick = [&] {
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
  };
  drive_open_loop(system.loop(), kRate, kWarmup, tick);
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), kRate, kMeasure, tick);
  std::uint64_t after = system.hmi().counters().updates_received;
  return static_cast<double>(after - before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();
  print_header("Figure 8(a)", "Update value use case, 1000 ItemUpdate/s");

  double neo = run_baseline(costs);
  double smart = run_replicated(costs);
  print_row("NeoSCADA", neo, "ops/s   (paper: ~1000)");
  print_row("SMaRt-SCADA", smart, "ops/s   (paper: ~940)");
  std::printf("%-34s %10.1f %%       (paper: ~6%%)\n", "overhead",
              overhead_pct(neo, smart));

  // Sensitivity: the shape must survive +/-50% CPU-cost perturbation.
  print_note("sensitivity (CPU costs scaled):");
  for (double scale : {0.5, 1.5}) {
    sim::CostModel scaled = costs.scaled_cpu(scale);
    double neo_s = run_baseline(scaled);
    double smart_s = run_replicated(scaled);
    std::printf("  x%.1f: NeoSCADA %7.1f  SMaRt-SCADA %7.1f  overhead %5.1f%%\n",
                scale, neo_s, smart_s, overhead_pct(neo_s, smart_s));
  }
  return 0;
}
