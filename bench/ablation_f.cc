// Ablation: resilience level f (n = 3f + 1 replicas).
//
// The paper fixes f = 1 (4 SCADA Masters). This bench measures what higher
// resilience costs: update throughput at the Fig 8(a) workload and the
// synchronous write rate for f = 1, 2, 3 (n = 4, 7, 10).
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(1);
constexpr SimTime kMeasure = seconds(10);

core::ReplicatedOptions make_options(std::uint32_t f) {
  core::ReplicatedOptions options;
  options.group = GroupConfig::for_f(f);
  options.costs = sim::CostModel::paper_testbed();
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  return options;
}

struct Result {
  double updates = 0;
  double writes = 0;
};

Result run(std::uint32_t f) {
  Result result;
  {
    core::ReplicatedDeployment system(make_options(f));
    ItemId item = system.add_point("feeder");
    system.start();
    std::uint64_t count = 0;
    auto tick = [&](SimTime) {
      system.frontend().field_update(item, scada::Variant{double(count++)});
    };
    drive_open_loop(system.loop(), 1000.0, kWarmup, tick);
    std::uint64_t before = system.hmi().counters().updates_received;
    drive_open_loop(system.loop(), 1000.0, kMeasure, tick);
    result.updates = static_cast<double>(
                         system.hmi().counters().updates_received - before) /
                     (static_cast<double>(kMeasure) / kNanosPerSec);
  }
  {
    core::ReplicatedDeployment system(make_options(f));
    ItemId item = system.add_point("valve", scada::Variant{0.0});
    system.start();
    std::uint64_t completed = 0;
    double value = 0;
    std::function<void()> issue = [&] {
      system.hmi().write(item, scada::Variant{value},
                         [&](const scada::WriteResult&) {
                           ++completed;
                           value += 1.0;
                           issue();
                         });
    };
    issue();
    system.run_until(system.loop().now() + kWarmup);
    std::uint64_t before = completed;
    system.run_until(system.loop().now() + kMeasure);
    result.writes = static_cast<double>(completed - before) /
                    (static_cast<double>(kMeasure) / kNanosPerSec);
  }
  return result;
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  print_header("Ablation: resilience level", "f sweep (n = 3f + 1)");
  std::printf("%-6s %-6s %18s %16s\n", "f", "n", "updates/s @1000/s",
              "sync writes/s");
  JsonReport json("ablation_f");
  for (std::uint32_t f : {1u, 2u, 3u}) {
    Result result = run(f);
    std::printf("%-6u %-6u %18.1f %16.1f\n", f, 3 * f + 1, result.updates,
                result.writes);
    json.add("f" + std::to_string(f) + "_updates", result.updates);
    json.add("f" + std::to_string(f) + "_writes", result.writes);
  }
  json.write();
  std::printf(
      "\nreading: each extra f adds 3 replicas; quadratic agreement traffic\n"
      "on the single replica thread erodes the update capacity and the\n"
      "write rate — the price of tolerating stronger adversaries.\n");
  return 0;
}
