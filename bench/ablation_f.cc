// Ablation: resilience level f, across agreement protocols.
//
// The paper fixes f = 1 under PBFT (4 SCADA Masters). This bench measures
// what resilience costs under both agreement engines: PBFT (n = 3f+1,
// 2f+1 write quorum) vs MinBFT (n = 2f+1, f+1 commit quorum backed by the
// USIG trusted counter). For each protocol x f in {1, 2} it reports the
// Fig 8(a) update throughput and the synchronous write rate, in two
// backends:
//
//  * sim (default): the deterministic in-process ReplicatedDeployment in
//    virtual time — CI-stable numbers.
//  * socket (--socket, or default when SS_ABLATION_SOCKET=1): forks the
//    `deploy` binary's replica role n times with SS_PROTOCOL exported and
//    drives synchronous HMI writes over real UDP — the same processes the
//    paper's testbed ran, so protocol message-count differences (4 vs 3
//    replicas at f=1) show up as wall-clock write rates.
//
// Emits BENCH_ablation_f.json with one record per (backend, protocol, f,
// metric).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/nodes.h"
#include "core/proxies.h"
#include "core/scada_link.h"
#include "crypto/keychain.h"
#include "net/resolver.h"
#include "net/socket_transport.h"
#include "scada/frontend.h"
#include "scada/hmi.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(1);
constexpr SimTime kMeasure = seconds(10);
/// Socket mode runs in wall-clock time; keep it short enough for CI.
constexpr SimTime kSocketWarmup = seconds(1);
constexpr SimTime kSocketMeasure = seconds(3);

// Must match the registration order in examples/deploy.cpp.
constexpr ItemId kSetpoint{2};
const char* kTemperatureName = "plant/reactor/temperature";
const char* kSetpointName = "plant/reactor/setpoint";
const char* kGroupSecret = "smart-scada-secret";

core::ReplicatedOptions make_options(Protocol protocol, std::uint32_t f) {
  core::ReplicatedOptions options;
  options.group = GroupConfig::for_protocol(protocol, f);
  options.costs = sim::CostModel::paper_testbed();
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  return options;
}

struct Result {
  double updates = 0;
  double writes = 0;
};

Result run_sim(Protocol protocol, std::uint32_t f) {
  Result result;
  {
    core::ReplicatedDeployment system(make_options(protocol, f));
    ItemId item = system.add_point("feeder");
    system.start();
    std::uint64_t count = 0;
    auto tick = [&](SimTime) {
      system.frontend().field_update(item, scada::Variant{double(count++)});
    };
    drive_open_loop(system.loop(), 1000.0, kWarmup, tick);
    std::uint64_t before = system.hmi().counters().updates_received;
    drive_open_loop(system.loop(), 1000.0, kMeasure, tick);
    result.updates = static_cast<double>(
                         system.hmi().counters().updates_received - before) /
                     (static_cast<double>(kMeasure) / kNanosPerSec);
  }
  {
    core::ReplicatedDeployment system(make_options(protocol, f));
    ItemId item = system.add_point("valve", scada::Variant{0.0});
    system.start();
    std::uint64_t completed = 0;
    double value = 0;
    std::function<void()> issue = [&] {
      system.hmi().write(item, scada::Variant{value},
                         [&](const scada::WriteResult&) {
                           ++completed;
                           value += 1.0;
                           issue();
                         });
    };
    issue();
    system.run_until(system.loop().now() + kWarmup);
    std::uint64_t before = completed;
    system.run_until(system.loop().now() + kMeasure);
    result.writes = static_cast<double>(completed - before) /
                    (static_cast<double>(kMeasure) / kNanosPerSec);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Socket mode: fork `deploy replica` processes (SS_PROTOCOL exported, so the
// children and the generated config agree on the group) and drive
// synchronous HMI writes over real UDP.

std::string locate_deploy() {
  if (const char* env = std::getenv("SS_DEPLOY")) return env;
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string dir(buf);
    std::size_t slash = dir.rfind('/');
    if (slash != std::string::npos) dir.resize(slash);
    for (const std::string& cand :
         {dir + "/../examples/deploy", dir + "/deploy"}) {
      if (::access(cand.c_str(), X_OK) == 0) return cand;
    }
  }
  return "deploy";
}

class SocketGroup {
 public:
  SocketGroup(Protocol protocol, std::uint32_t f, std::uint16_t base_port)
      : group_(GroupConfig::for_protocol(protocol, f)) {
    // The spawned replicas and `deploy config` both derive the group from
    // SS_PROTOCOL; export it so every process agrees on n and the quorums.
    ::setenv("SS_PROTOCOL", protocol_name(protocol), 1);
    deploy_ = locate_deploy();
    write_config(f, base_port);
    for (std::uint32_t i = 0; i < group_.n; ++i) {
      replicas_.push_back(spawn_replica(i, f));
    }
    ::usleep(300 * 1000);  // let the replicas bind

    transport_ = std::make_unique<net::SocketTransport>(
        net::Resolver::from_file(config_), net::socket_options_from_env());
    keys_ = std::make_unique<crypto::Keychain>(kGroupSecret);
    hmi_ = std::make_unique<scada::Hmi>(
        scada::HmiOptions{.subscriber_name = core::kHmiEndpoint});
    core::ProxyOptions proxy_options;
    proxy_options.endpoint = core::kProxyHmiEndpoint;
    proxy_options.component_endpoint = core::kHmiEndpoint;
    proxy_ = std::make_unique<core::ComponentProxy>(
        *transport_, group_, ClientId{core::kProxyHmiClient}, *keys_,
        proxy_options);
    node_ = std::make_unique<core::HmiNode>(
        *transport_, *keys_, *hmi_,
        core::NodeOptions{.endpoint = core::kHmiEndpoint,
                          .peer = core::kProxyHmiEndpoint});

    // The Frontend core must be present for writes to complete: the masters
    // forward each WriteValue to the field, and with no RTU driver attached
    // the frontend applies it locally and acks — the same shape
    // bench/load_openloop measures.
    frontend_ = std::make_unique<scada::Frontend>(
        scada::FrontendOptions{.instance_id = 1});
    frontend_->add_item(kTemperatureName);
    frontend_->add_item(kSetpointName, scada::Variant{20.0});
    core::ProxyOptions fe_proxy_options;
    fe_proxy_options.endpoint = core::kProxyFrontendEndpoint;
    fe_proxy_options.component_endpoint = core::kFrontendEndpoint;
    frontend_proxy_ = std::make_unique<core::ComponentProxy>(
        *transport_, group_, ClientId{core::kProxyFrontendClient}, *keys_,
        fe_proxy_options);
    frontend_node_ = std::make_unique<core::FrontendNode>(
        *transport_, *keys_, *frontend_,
        core::NodeOptions{.endpoint = core::kFrontendEndpoint,
                          .peer = core::kProxyFrontendEndpoint});
  }

  ~SocketGroup() {
    frontend_node_.reset();
    frontend_proxy_.reset();
    node_.reset();
    proxy_.reset();
    transport_.reset();
    for (pid_t pid : replicas_) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    for (pid_t pid : replicas_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
    if (!config_.empty()) ::unlink(config_.c_str());
  }

  /// One successful write proves the group is live; retry until deadline.
  bool warm_up() {
    hmi_->subscribe_all();
    SimTime deadline = transport_->now() + seconds(30);
    while (transport_->now() < deadline) {
      bool done = false;
      bool ok = false;
      hmi_->write(kSetpoint, scada::Variant{20.0},
                  [&](const scada::WriteResult& r) {
                    done = true;
                    ok = r.status == scada::WriteStatus::kOk;
                  });
      transport_->run_until([&] { return done; }, seconds(2));
      if (done && ok) return true;
    }
    return false;
  }

  /// Synchronous closed-loop writes for `duration`; returns writes/s.
  double measure_writes(SimTime warmup, SimTime duration) {
    std::uint64_t completed = 0;
    bool stop = false;
    double value = 0;
    std::function<void()> issue = [&] {
      if (stop) return;
      hmi_->write(kSetpoint, scada::Variant{value},
                  [&](const scada::WriteResult&) {
                    ++completed;
                    value += 1.0;
                    issue();
                  });
    };
    issue();
    transport_->run_until([] { return false; }, warmup);
    std::uint64_t before = completed;
    transport_->run_until([] { return false; }, duration);
    std::uint64_t after = completed;
    stop = true;
    // Let the in-flight write drain before tearing the callbacks down.
    transport_->run_until([] { return false; }, millis(200));
    return static_cast<double>(after - before) /
           (static_cast<double>(duration) / kNanosPerSec);
  }

 private:
  void write_config(std::uint32_t f, std::uint16_t base_port) {
    config_ = "/tmp/smart-scada-ablation-" + std::to_string(::getpid()) +
              "-" + std::to_string(base_port) + ".conf";
    std::string cmd = deploy_ + " config --f " + std::to_string(f) +
                      " --base-port " + std::to_string(base_port);
    std::FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      throw std::runtime_error("ablation_f: cannot run: " + cmd);
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
      text.append(buf, n);
    }
    int rc = ::pclose(pipe);
    if (rc != 0 || text.empty()) {
      throw std::runtime_error("ablation_f: `" + cmd +
                               "` failed; set SS_DEPLOY");
    }
    std::ofstream out(config_);
    out << text;
  }

  pid_t spawn_replica(std::uint32_t i, std::uint32_t f) {
    const std::string fs = std::to_string(f);
    pid_t pid = ::fork();
    if (pid == 0) {
      std::string id = std::to_string(i);
      const char* argv[] = {deploy_.c_str(), "replica",
                            "--id",          id.c_str(),
                            "--f",           fs.c_str(),
                            "--config",      config_.c_str(),
                            nullptr};
      ::execv(deploy_.c_str(), const_cast<char**>(argv));
      std::perror("execv deploy replica");
      std::_Exit(127);
    }
    return pid;
  }

  GroupConfig group_;
  std::string deploy_;
  std::string config_;
  std::vector<pid_t> replicas_;
  std::unique_ptr<net::SocketTransport> transport_;
  std::unique_ptr<crypto::Keychain> keys_;
  std::unique_ptr<scada::Hmi> hmi_;
  std::unique_ptr<core::ComponentProxy> proxy_;
  std::unique_ptr<core::HmiNode> node_;
  std::unique_ptr<scada::Frontend> frontend_;
  std::unique_ptr<core::ComponentProxy> frontend_proxy_;
  std::unique_ptr<core::FrontendNode> frontend_node_;
};

double run_socket(Protocol protocol, std::uint32_t f,
                  std::uint16_t base_port) {
  try {
    SocketGroup group(protocol, f, base_port);
    if (!group.warm_up()) {
      std::fprintf(stderr,
                   "ablation_f: %s f=%u replica group never became live\n",
                   protocol_name(protocol), f);
      return 0.0;
    }
    return group.measure_writes(kSocketWarmup, kSocketMeasure);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ablation_f: socket %s f=%u: %s\n",
                 protocol_name(protocol), f, e.what());
    return 0.0;
  }
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) {
  using namespace ss;
  using namespace ss::bench;

  bool socket_mode = std::getenv("SS_ABLATION_SOCKET") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) socket_mode = true;
    if (std::strcmp(argv[i], "--sim-only") == 0) socket_mode = false;
  }

  constexpr Protocol kProtocols[] = {Protocol::kPbft, Protocol::kMinBft};
  constexpr std::uint32_t kLevels[] = {1u, 2u};

  print_header("Ablation: resilience level",
               "protocol x f sweep (PBFT n=3f+1, MinBFT n=2f+1)");
  std::printf("%-8s %-4s %-4s %18s %16s\n", "proto", "f", "n",
              "updates/s @1000/s", "sync writes/s");
  JsonReport json("ablation_f");
  for (Protocol protocol : kProtocols) {
    for (std::uint32_t f : kLevels) {
      Result result = run_sim(protocol, f);
      GroupConfig group = GroupConfig::for_protocol(protocol, f);
      std::printf("%-8s %-4u %-4u %18.1f %16.1f\n", protocol_name(protocol),
                  f, group.n, result.updates, result.writes);
      std::string prefix = std::string("sim_") + protocol_name(protocol) +
                           "_f" + std::to_string(f);
      json.add(prefix + "_updates", result.updates);
      json.add(prefix + "_writes", result.writes);
    }
  }

  if (socket_mode) {
    std::printf("\nsocket backend (real UDP, %lld s per point):\n",
                static_cast<long long>(kSocketMeasure / kNanosPerSec));
    std::printf("%-8s %-4s %-4s %16s\n", "proto", "f", "n", "sync writes/s");
    std::uint16_t base_port = static_cast<std::uint16_t>(
        43000 + (::getpid() % 4000) * 2);
    for (Protocol protocol : kProtocols) {
      for (std::uint32_t f : kLevels) {
        double writes = run_socket(protocol, f, base_port);
        base_port = static_cast<std::uint16_t>(base_port + 64);
        GroupConfig group = GroupConfig::for_protocol(protocol, f);
        std::printf("%-8s %-4u %-4u %16.1f\n", protocol_name(protocol), f,
                    group.n, writes);
        json.add(std::string("socket_") + protocol_name(protocol) + "_f" +
                     std::to_string(f) + "_writes",
                 writes);
      }
    }
  } else {
    std::printf(
        "\n(socket backend skipped: pass --socket or set "
        "SS_ABLATION_SOCKET=1)\n");
  }

  json.write();
  std::printf(
      "\nreading: under PBFT each extra f adds 3 replicas and quadratic\n"
      "agreement traffic; MinBFT's trusted counter buys the same f with\n"
      "2f+1 replicas and one less round, so the curve degrades more\n"
      "slowly — the paper's f=1 deployment would run 3 Masters instead\n"
      "of 4.\n");
  return 0;
}
