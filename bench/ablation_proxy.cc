// Ablation: the cost of transparent solutions (paper §VII-c).
//
// "We decided to minimize the modifications in both SCADA and BFT library
// code ... placing proxies between the SCADA and BFT library introduced
// additional processing steps. The alternative would be to integrate both
// projects more deeply." This bench estimates what a deep (proxy-free)
// integration would recover by zeroing the proxy-layer CPU costs
// (adapter demux, per-frame serialization at the proxies, voter work) while
// keeping the agreement and master costs — an optimistic bound on the deep
// integration the authors chose not to do.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(1);
constexpr SimTime kMeasure = seconds(10);

core::ReplicatedOptions make_options(bool deep_integration) {
  core::ReplicatedOptions options;
  options.costs = sim::CostModel::paper_testbed();
  if (deep_integration) {
    options.costs.adapter_process = 0;
    options.costs.serialize_per_msg = 0;
    options.costs.voter_process = 0;
  }
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  return options;
}

double update_throughput(bool deep) {
  core::ReplicatedDeployment system(make_options(deep));
  ItemId item = system.add_point("feeder");
  system.start();
  std::uint64_t count = 0;
  auto tick = [&](SimTime) {
    system.frontend().field_update(item, scada::Variant{double(count++)});
  };
  drive_open_loop(system.loop(), 1500.0, kWarmup, tick);
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), 1500.0, kMeasure, tick);
  return static_cast<double>(system.hmi().counters().updates_received -
                             before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

double write_throughput(bool deep) {
  core::ReplicatedDeployment system(make_options(deep));
  ItemId item = system.add_point("valve", scada::Variant{0.0});
  system.start();
  std::uint64_t completed = 0;
  double value = 0;
  std::function<void()> issue = [&] {
    system.hmi().write(item, scada::Variant{value},
                       [&](const scada::WriteResult&) {
                         ++completed;
                         value += 1.0;
                         issue();
                       });
  };
  issue();
  system.run_until(system.loop().now() + kWarmup);
  std::uint64_t before = completed;
  system.run_until(system.loop().now() + kMeasure);
  return static_cast<double>(completed - before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  print_header("Ablation: the cost of transparent solutions (paper SVII-c)",
               "proxy-based vs (estimated) deep integration");
  double shallow_upd = update_throughput(false);
  double deep_upd = update_throughput(true);
  double shallow_wr = write_throughput(false);
  double deep_wr = write_throughput(true);
  std::printf("%-40s %14s %14s\n", "", "updates/s", "sync writes/s");
  std::printf("%-40s %14.1f %14.1f\n", "proxy-based (SMaRt-SCADA, shipped)",
              shallow_upd, shallow_wr);
  std::printf("%-40s %14.1f %14.1f\n", "deep integration (proxy CPU zeroed)",
              deep_upd, deep_wr);
  std::printf("%-40s %13.1f%% %13.1f%%\n", "recoverable by deep integration",
              100.0 * (deep_upd - shallow_upd) / shallow_upd,
              100.0 * (deep_wr - shallow_wr) / shallow_wr);
  std::printf(
      "\nreading: even a free proxy layer leaves most of the write-path\n"
      "overhead in place (agreement + serialization for determinism) —\n"
      "supporting the authors' choice of transparency over deep surgery.\n");
  return 0;
}
