// Ablation: request batching in the agreement layer.
//
// The paper's 6% update overhead depends on the consensus cost being
// amortized across batched requests. This bench sweeps max_batch and shows
// both delivered update throughput (open loop) and synchronous write rate
// (closed loop, batching cannot help there — one outstanding request).
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(1);
constexpr SimTime kMeasure = seconds(10);

core::ReplicatedOptions make_options(std::uint32_t max_batch) {
  core::ReplicatedOptions options;
  options.costs = sim::CostModel::paper_testbed();
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  options.max_batch = max_batch;
  return options;
}

double update_throughput(std::uint32_t max_batch) {
  core::ReplicatedDeployment system(make_options(max_batch));
  ItemId item = system.add_point("feeder");
  system.start();
  std::uint64_t count = 0;
  auto tick = [&](SimTime) {
    system.frontend().field_update(item, scada::Variant{double(count++)});
  };
  drive_open_loop(system.loop(), 1000.0, kWarmup, tick);
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), 1000.0, kMeasure, tick);
  return static_cast<double>(system.hmi().counters().updates_received -
                             before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

double write_throughput(std::uint32_t max_batch) {
  core::ReplicatedDeployment system(make_options(max_batch));
  ItemId item = system.add_point("valve", scada::Variant{0.0});
  system.start();
  std::uint64_t completed = 0;
  double value = 0;
  std::function<void()> issue = [&] {
    system.hmi().write(item, scada::Variant{value},
                       [&](const scada::WriteResult&) {
                         ++completed;
                         value += 1.0;
                         issue();
                       });
  };
  issue();
  system.run_until(system.loop().now() + kWarmup);
  std::uint64_t before = completed;
  system.run_until(system.loop().now() + kMeasure);
  return static_cast<double>(completed - before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  print_header("Ablation: agreement batching", "max_batch sweep");
  std::printf("%-12s %18s %18s\n", "max_batch", "updates/s @1000/s",
              "sync writes/s");
  for (std::uint32_t batch : {1u, 4u, 16u, 64u}) {
    std::printf("%-12u %18.1f %18.1f\n", batch, update_throughput(batch),
                write_throughput(batch));
  }
  std::printf(
      "\nreading: batching amortizes the per-decision agreement cost on the\n"
      "open-loop update pipeline; the closed-loop write path (one request\n"
      "outstanding) gains nothing — its cost is communication steps.\n");
  return 0;
}
