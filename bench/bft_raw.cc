// Reproduces the §V-B context claim: "BFT-SMaRt is not the bottleneck of
// our system, as it reaches a throughput of 16k requests/sec for a similar
// message size (1024 bytes)".
//
// We measure the raw BFT layer alone (no SCADA on top): one saturating
// client pipelines null-service ordered requests at several payload sizes
// and we report decided requests per simulated second. The expectation to
// preserve is the *relation*: the BFT layer's ceiling is an order of
// magnitude above the ~1000 ops/s SCADA pipeline of Figure 8(a).
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bft/client.h"
#include "bft/replica.h"

namespace ss::bench {
namespace {

/// Null service: returns a tiny ack, maintains a counter as state.
class NullApp final : public bft::Executable, public bft::Recoverable {
 public:
  Bytes execute_ordered(const bft::ExecuteContext&, ByteView) override {
    ++executed_;
    Writer w(1);
    w.u8(1);
    return std::move(w).take();
  }
  Bytes execute_unordered(ClientId, ByteView) override {
    Writer w(1);
    w.u8(1);
    return std::move(w).take();
  }
  Bytes snapshot() const override {
    Writer w(8);
    w.varint(executed_);
    return std::move(w).take();
  }
  void restore(ByteView data) override {
    Reader r(data);
    executed_ = r.varint();
  }
  std::uint64_t executed() const { return executed_; }

 private:
  std::uint64_t executed_ = 0;
};

struct Result {
  double ops_per_sec = 0;
  std::vector<double> latencies_us;  ///< invoke -> reply, measure window
};

Result run(std::size_t payload_size, const sim::CostModel& costs,
           std::uint32_t pipeline_depth) {
  sim::EventLoop loop;
  sim::Network net(loop, costs.hop_latency, costs.ns_per_byte);
  crypto::Keychain keys("bft-raw");
  GroupConfig group = GroupConfig::for_f(1);

  std::vector<std::unique_ptr<NullApp>> apps;
  std::vector<std::unique_ptr<bft::Replica>> replicas;
  bft::ReplicaOptions options;
  options.per_message_cost = costs.bft_crypto_per_msg + costs.serialize_per_msg;
  options.per_decision_cost = costs.bft_consensus_overhead;
  options.lanes = 4;  // the standalone library is multi-threaded (Netty + worker pools)
  options.max_batch = 256;
  options.checkpoint_interval = 1 << 20;
  for (ReplicaId id : group.replica_ids()) {
    apps.push_back(std::make_unique<NullApp>());
    replicas.push_back(std::make_unique<bft::Replica>(
        net, group, id, keys, *apps.back(), *apps.back(), options));
  }
  bft::ClientProxy client(net, group, ClientId{1}, keys,
                          bft::ClientOptions{.reply_timeout = seconds(2)});

  // The client's pipelined requests are ordered FIFO, so a queue of issue
  // times pairs each reply with its own invocation.
  Bytes payload(payload_size, 0x5a);
  std::uint64_t completed = 0;
  bool measuring = false;
  std::deque<SimTime> issued;
  std::vector<double> latencies;
  std::function<void(Bytes)> on_reply = [&](Bytes) {
    ++completed;
    if (!issued.empty()) {
      if (measuring) {
        latencies.push_back(
            static_cast<double>(loop.now() - issued.front()) / 1000.0);
      }
      issued.pop_front();
    }
    issued.push_back(loop.now());
    client.invoke_ordered(payload, on_reply);
  };
  for (std::uint32_t i = 0; i < pipeline_depth; ++i) {
    issued.push_back(loop.now());
    client.invoke_ordered(payload, on_reply);
  }

  constexpr SimTime kWarmup = seconds(1);
  constexpr SimTime kMeasure = seconds(5);
  loop.run_until(kWarmup);
  measuring = true;
  std::uint64_t before = completed;
  loop.run_until(kWarmup + kMeasure);
  return Result{static_cast<double>(completed - before) /
                    (static_cast<double>(kMeasure) / kNanosPerSec),
                std::move(latencies)};
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();
  print_header("BFT-SMaRt raw throughput (paper §V-B)",
               "null service, f=1, saturating client");
  std::printf("%-12s %-10s %14s %12s %12s\n", "payload", "pipeline",
              "requests/s", "p50 (us)", "p99 (us)");
  JsonReport json("bft_raw");
  for (std::size_t size : {0u, 64u, 1024u}) {
    for (std::uint32_t depth : {64u, 256u}) {
      Result result = run(size, costs, depth);
      std::printf("%8zu B   %8u %14.0f %12.0f %12.0f\n", size, depth,
                  result.ops_per_sec, percentile(result.latencies_us, 50),
                  percentile(result.latencies_us, 99));
      json.add("payload" + std::to_string(size) + "_depth" +
                   std::to_string(depth),
               result.ops_per_sec, std::move(result.latencies_us));
    }
  }
  json.write();
  std::printf(
      "\npaper context: BFT-SMaRt alone reached ~16k req/s at 1 kB;\n"
      "the relation that must hold: raw BFT >> ~1k ops/s SCADA pipeline.\n");
  return 0;
}
