// Reproduces Figure 8(b): Update value use case with the AE subsystem —
// driven open-loop through the src/load burst schedule.
//
// Workload (paper §V-A): 1000 ItemUpdate/s with a Monitor handler attached;
// in one scenario half the updates trip the alarm threshold (50%-alarms),
// in the other all of them do (100%-alarms). Every alarm is persisted to
// storage and pushed as an EventUpdate to the HMI. Paper result: NeoSCADA
// keeps processing all messages in both scenarios; SMaRt-SCADA loses ~10%
// (50%) and ~25% (100%).
//
// Unlike the original closed-loop port, arrivals come from
// load::generate_schedule (kBurst) and every latency sample is measured
// from the operation's *scheduled* send time, so queueing under the alarm
// storm shows up as tail latency instead of disappearing into the
// generator's politeness (coordinated omission — see load/schedule.h). On
// top of the paper's sustained-rate rows, a storm sweep multiplies the
// arrival rate 10x/100x during periodic burst windows, the event-rate
// regime the paper's alarm-avalanche discussion worries about.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "load/driver.h"
#include "load/report.h"
#include "load/schedule.h"
#include "scada/handlers.h"

namespace ss::bench {
namespace {

constexpr double kRate = 1000.0;
constexpr SimTime kMeasure = seconds(10);
// The Monitor triggers above 100; the value encoding keeps alarm updates
// far above it and normal updates far below (negative).
constexpr double kThreshold = 100.0;
constexpr double kValueBase = 1e9;

/// Open-loop update workload where `alarm_pct` of the updates trip the
/// Monitor. Each update's value encodes its schedule index so the HMI's
/// voted push stream can complete the matching operation: alarm updates
/// carry +(base + index) (far above the threshold), normal updates carry
/// -(base + index) (far below); |value| - base recovers the index.
struct AlarmWorkload {
  int alarm_pct = 100;
  scada::Frontend* frontend = nullptr;
  ItemId item;
  std::vector<load::OpenLoopDriver::CompletionFn> done;

  void issue(const load::Arrival& a, load::OpenLoopDriver::CompletionFn fn) {
    done[a.index] = std::move(fn);
    bool alarm = (a.index + 1) * static_cast<std::uint64_t>(alarm_pct) / 100 !=
                 a.index * static_cast<std::uint64_t>(alarm_pct) / 100;
    double magnitude = kValueBase + static_cast<double>(a.index);
    frontend->field_update(item, scada::Variant{alarm ? magnitude : -magnitude});
  }

  void on_update(const scada::ItemUpdate& update) {
    if (update.item != item) return;
    double rel = std::fabs(update.value.as_double()) - kValueBase;
    if (rel < 0 || rel >= static_cast<double>(done.size())) return;
    auto index = static_cast<std::size_t>(rel);
    if (done[index]) done[index](true);
  }
};

load::ScheduleOptions storm_schedule(double burst_mult) {
  load::ScheduleOptions schedule;
  schedule.shape = load::ArrivalShape::kBurst;
  schedule.rate_per_sec = kRate;
  schedule.duration = kMeasure;
  schedule.clients = 64;
  schedule.burst_multiplier = burst_mult;
  return schedule;
}

/// Runs one open-loop alarm-storm scenario over either deployment flavour
/// (both expose loop()/net()/hmi()/frontend()). Events-per-second (the AE
/// storage pressure the figure is about) rides along as a record extra.
template <typename Deployment>
load::RunRecord run_storm(Deployment& system, ItemId item,
                          const std::string& name, int alarm_pct,
                          double burst_mult) {
  AlarmWorkload workload;
  workload.alarm_pct = alarm_pct;
  workload.frontend = &system.frontend();
  workload.item = item;

  load::ScheduleOptions schedule_opt = storm_schedule(burst_mult);
  std::vector<load::Arrival> schedule = load::generate_schedule(schedule_opt);
  workload.done.resize(schedule.size());
  system.hmi().set_update_callback(
      [&workload](const scada::ItemUpdate& u) { workload.on_update(u); });

  std::uint64_t evt0 = system.hmi().counters().events_received;
  std::uint64_t upd0 = system.hmi().counters().updates_received;

  load::DriverOptions driver_opt;
  driver_opt.op_timeout = seconds(2);
  load::OpenLoopDriver driver(
      system.net(), std::move(schedule),
      [&workload](const load::Arrival& a,
                  load::OpenLoopDriver::CompletionFn fn) {
        workload.issue(a, std::move(fn));
      },
      driver_opt);
  driver.start();
  SimTime hard_stop = system.loop().now() + schedule_opt.duration +
                      driver_opt.op_timeout + seconds(5);
  while (!driver.finished() && system.loop().now() < hard_stop) {
    system.loop().run_until(
        std::min<SimTime>(system.loop().now() + millis(100), hard_stop));
  }

  load::RunRecord record =
      load::RunRecord::from_driver(name, "update", schedule_opt, driver);
  double secs = record.run_seconds > 0 ? record.run_seconds : 1.0;
  record.extras.emplace_back(
      "updates_per_sec",
      static_cast<double>(system.hmi().counters().updates_received - upd0) /
          secs);
  record.extras.emplace_back(
      "events_per_sec",
      static_cast<double>(system.hmi().counters().events_received - evt0) /
          secs);
  system.hmi().set_update_callback({});
  return record;
}

load::RunRecord run_baseline(const sim::CostModel& costs,
                             const std::string& name, int alarm_pct,
                             double burst_mult) {
  core::BaselineDeployment system(
      core::BaselineOptions{.costs = costs, .storage_retention = 1024});
  ItemId item = system.add_point("grid/feeder");
  system.master().handlers(item).emplace<scada::MonitorHandler>(
      scada::MonitorHandler::Condition::kAbove, kThreshold);
  system.start();
  return run_storm(system, item, name, alarm_pct, burst_mult);
}

load::RunRecord run_replicated(const sim::CostModel& costs,
                               const std::string& name, int alarm_pct,
                               double burst_mult) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  // Under open-loop overload the queue (not a retransmit storm) must absorb
  // the excess: give the proxies a reply timeout beyond the run length.
  options.client_reply_timeout = seconds(60);
  // Same rationale for the leader-suspect timer: sustained overload must
  // not be misread as a faulty leader (perpetual view changes).
  options.request_timeout = seconds(60);
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("grid/feeder");
  system.configure_masters([item](scada::ScadaMaster& master) {
    master.handlers(item).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, kThreshold);
  });
  system.start();
  return run_storm(system, item, name, alarm_pct, burst_mult);
}

double extra(const load::RunRecord& record, const char* key) {
  for (const auto& [name, value] : record.extras) {
    if (name == key) return value;
  }
  return 0.0;
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();
  print_header("Figure 8(b)",
               "Update value use case with the AE subsystem (alarms), "
               "open-loop burst schedule");

  load::LoadReport report("fig8b_alarms");

  // The paper's sustained-rate comparison (burst multiplier 1 = a plain
  // Poisson stream at 1000/s).
  load::RunRecord neo50 = run_baseline(costs, "neo@50pct", 50, 1.0);
  load::RunRecord neo100 = run_baseline(costs, "neo@100pct", 100, 1.0);
  load::RunRecord smart50 = run_replicated(costs, "smart@50pct", 50, 1.0);
  load::RunRecord smart100 = run_replicated(costs, "smart@100pct", 100, 1.0);

  print_row("NeoSCADA (50% alarms)", neo50.goodput_per_sec,
            "ops/s   (paper: ~1000)");
  print_row("NeoSCADA (100% alarms)", neo100.goodput_per_sec,
            "ops/s   (paper: ~1000)");
  print_row("SMaRt-SCADA (50% alarms)", smart50.goodput_per_sec,
            "ops/s   (paper: ~900, -10%)");
  print_row("SMaRt-SCADA (100% alarms)", smart100.goodput_per_sec,
            "ops/s   (paper: ~750, -25%)");
  std::printf("%-34s %10.1f %%       (paper: ~10%%)\n",
              "overhead (50% alarms)",
              overhead_pct(neo50.goodput_per_sec, smart50.goodput_per_sec));
  std::printf("%-34s %10.1f %%       (paper: ~25%%)\n",
              "overhead (100% alarms)",
              overhead_pct(neo100.goodput_per_sec, smart100.goodput_per_sec));
  print_note("alarm events delivered to the HMI (per second):");
  std::printf("  NeoSCADA 50%%: %.1f  100%%: %.1f   SMaRt-SCADA 50%%: %.1f  "
              "100%%: %.1f\n",
              extra(neo50, "events_per_sec"), extra(neo100, "events_per_sec"),
              extra(smart50, "events_per_sec"),
              extra(smart100, "events_per_sec"));

  report.add(neo50);
  report.add(neo100);
  report.add(smart50);
  report.add(smart100);

  // The alarm-storm sweep: 100%-alarm traffic whose rate multiplies 10x /
  // 100x during periodic burst windows. Open-loop latency from scheduled
  // send time, so the storm's queueing is visible as p99 and timeouts.
  print_note("alarm storm (100% alarms, burst windows at 10x / 100x):");
  for (double mult : {10.0, 100.0}) {
    char name[48];
    std::snprintf(name, sizeof(name), "smart@storm%dx",
                  static_cast<int>(mult));
    load::RunRecord storm = run_replicated(costs, name, 100, mult);
    std::printf("  %-20s goodput %8.1f ops/s  p99 %9.1f us  timeout %5.2f%%\n",
                name, storm.goodput_per_sec, storm.latency.p99_us,
                100.0 * storm.timeout_rate());
    report.add(std::move(storm));
  }

  report.write();
  return 0;
}
