// Reproduces Figure 8(b): Update value use case with the AE subsystem.
//
// Workload (paper §V-A): 1000 ItemUpdate/s with a Monitor handler attached;
// in one scenario half the updates trip the alarm threshold (50%-alarms),
// in the other all of them do (100%-alarms). Every alarm is persisted to
// storage and pushed as an EventUpdate to the HMI. Paper result: NeoSCADA
// keeps processing all messages in both scenarios; SMaRt-SCADA loses ~10%
// (50%) and ~25% (100%) — "the number of events that go to storage is twice
// what was observed in the 50%-alarms scenario".
#include <cstdio>

#include "bench/bench_util.h"
#include "scada/handlers.h"

namespace ss::bench {
namespace {

constexpr double kRate = 1000.0;
constexpr SimTime kWarmup = seconds(2);
constexpr SimTime kMeasure = seconds(20);
// The Monitor triggers above 100; alternate values straddle the threshold
// according to the requested alarm ratio.
constexpr double kThreshold = 100.0;

struct Result {
  double updates_per_sec = 0;
  double events_per_sec = 0;
};

/// Generates values such that `alarm_pct` of updates exceed the threshold.
class ValueSource {
 public:
  explicit ValueSource(int alarm_pct) : alarm_pct_(alarm_pct) {}
  double next() {
    ++count_;
    bool alarm = static_cast<int>(count_ * alarm_pct_ / 100) !=
                 static_cast<int>((count_ - 1) * alarm_pct_ / 100);
    // Vary the value so consecutive updates are never equal.
    double jitter = static_cast<double>(count_ % 50);
    return alarm ? kThreshold + 1 + jitter : jitter;
  }

 private:
  int alarm_pct_;
  std::uint64_t count_ = 0;
};

Result run_baseline(const sim::CostModel& costs, int alarm_pct) {
  core::BaselineDeployment system(
      core::BaselineOptions{.costs = costs, .storage_retention = 1024});
  ItemId item = system.add_point("grid/feeder");
  system.master().handlers(item).emplace<scada::MonitorHandler>(
      scada::MonitorHandler::Condition::kAbove, kThreshold);
  system.start();

  ValueSource source(alarm_pct);
  auto tick = [&](SimTime) {
    system.frontend().field_update(item, scada::Variant{source.next()});
  };
  drive_open_loop(system.loop(), kRate, kWarmup, tick);
  std::uint64_t upd0 = system.hmi().counters().updates_received;
  std::uint64_t evt0 = system.hmi().counters().events_received;
  drive_open_loop(system.loop(), kRate, kMeasure, tick);
  double secs = static_cast<double>(kMeasure) / kNanosPerSec;
  return Result{
      (system.hmi().counters().updates_received - upd0) / secs,
      (system.hmi().counters().events_received - evt0) / secs,
  };
}

Result run_replicated(const sim::CostModel& costs, int alarm_pct) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  // Under open-loop overload the queue (not a retransmit storm) must absorb
  // the excess: give the proxies a reply timeout beyond the run length.
  options.client_reply_timeout = seconds(60);
  // Same rationale for the leader-suspect timer: sustained overload must
  // not be misread as a faulty leader (perpetual view changes).
  options.request_timeout = seconds(60);
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("grid/feeder");
  system.configure_masters([item](scada::ScadaMaster& master) {
    master.handlers(item).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, kThreshold);
  });
  system.start();

  ValueSource source(alarm_pct);
  auto tick = [&](SimTime) {
    system.frontend().field_update(item, scada::Variant{source.next()});
  };
  drive_open_loop(system.loop(), kRate, kWarmup, tick);
  std::uint64_t upd0 = system.hmi().counters().updates_received;
  std::uint64_t evt0 = system.hmi().counters().events_received;
  drive_open_loop(system.loop(), kRate, kMeasure, tick);
  double secs = static_cast<double>(kMeasure) / kNanosPerSec;
  return Result{
      (system.hmi().counters().updates_received - upd0) / secs,
      (system.hmi().counters().events_received - evt0) / secs,
  };
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();
  print_header("Figure 8(b)",
               "Update value use case with the AE subsystem (alarms)");

  Result neo50 = run_baseline(costs, 50);
  Result neo100 = run_baseline(costs, 100);
  Result smart50 = run_replicated(costs, 50);
  Result smart100 = run_replicated(costs, 100);

  print_row("NeoSCADA (50% alarms)", neo50.updates_per_sec,
            "ops/s   (paper: ~1000)");
  print_row("NeoSCADA (100% alarms)", neo100.updates_per_sec,
            "ops/s   (paper: ~1000)");
  print_row("SMaRt-SCADA (50% alarms)", smart50.updates_per_sec,
            "ops/s   (paper: ~900, -10%)");
  print_row("SMaRt-SCADA (100% alarms)", smart100.updates_per_sec,
            "ops/s   (paper: ~750, -25%)");
  std::printf("%-34s %10.1f %%       (paper: ~10%%)\n",
              "overhead (50% alarms)",
              overhead_pct(neo50.updates_per_sec, smart50.updates_per_sec));
  std::printf("%-34s %10.1f %%       (paper: ~25%%)\n",
              "overhead (100% alarms)",
              overhead_pct(neo100.updates_per_sec, smart100.updates_per_sec));
  print_note("alarm events delivered to the HMI (per second):");
  std::printf("  NeoSCADA 50%%: %.1f  100%%: %.1f   SMaRt-SCADA 50%%: %.1f  "
              "100%%: %.1f\n",
              neo50.events_per_sec, neo100.events_per_sec,
              smart50.events_per_sec, smart100.events_per_sec);

  JsonReport json("fig8b_alarms");
  json.add("neoscada_50pct", neo50.updates_per_sec);
  json.add("neoscada_100pct", neo100.updates_per_sec);
  json.add("smart_scada_50pct", smart50.updates_per_sec);
  json.add("smart_scada_100pct", smart100.updates_per_sec);
  json.add("neoscada_50pct_events", neo50.events_per_sec);
  json.add("neoscada_100pct_events", neo100.events_per_sec);
  json.add("smart_scada_50pct_events", smart50.events_per_sec);
  json.add("smart_scada_100pct_events", smart100.events_per_sec);
  json.write();
  return 0;
}
