// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "core/baseline_deployment.h"
#include "core/replicated_deployment.h"

namespace ss::bench {

/// Open-loop workload: calls `tick` at `rate_per_sec` for `duration`,
/// starting at the loop's current time.
inline void drive_open_loop(sim::EventLoop& loop, double rate_per_sec,
                            SimTime duration,
                            const std::function<void()>& tick) {
  SimTime period = static_cast<SimTime>(kNanosPerSec / rate_per_sec);
  SimTime end = loop.now() + duration;
  std::function<void()> step = [&loop, period, end, tick, &step] {
    if (loop.now() >= end) return;
    tick();
    loop.schedule(period, step);
  };
  loop.schedule(0, step);
  loop.run_until(end + millis(1));
}

inline void print_header(const char* figure, const char* title) {
  std::printf("\n=== %s: %s ===\n", figure, title);
}

inline void print_row(const std::string& system, double value,
                      const char* unit) {
  std::printf("%-34s %10.1f %s\n", system.c_str(), value, unit);
}

inline void print_note(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline double overhead_pct(double baseline, double value) {
  return baseline <= 0 ? 0.0 : 100.0 * (baseline - value) / baseline;
}

}  // namespace ss::bench
