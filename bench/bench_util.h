// Shared helpers for the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/baseline_deployment.h"
#include "core/replicated_deployment.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ss::bench {

/// Per-stage latency summary pulled from the Tracer's "stage/<name>"
/// histograms, in microseconds.
struct StageSummary {
  std::string stage;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t samples = 0;
};

/// Clears the metrics registry and tracer so the stage histograms reflect
/// exactly one bench configuration. Call before each measured run.
inline void reset_observability() {
  obs::Registry::instance().reset();
  obs::Tracer::instance().reset();
}

/// Snapshot of every populated stage histogram. The Tracer feeds these as
/// spans complete, so after a run this is the per-stage latency breakdown
/// of everything that op ids flowed through.
inline std::vector<StageSummary> stage_breakdown() {
  std::vector<StageSummary> out;
  obs::Registry::instance().for_each_histogram(
      [&](const std::string& name, const obs::Histogram& h) {
        if (name.rfind("stage/", 0) != 0 || h.count() == 0) return;
        out.push_back(StageSummary{
            name.substr(6), static_cast<double>(h.percentile(50)) / 1000.0,
            static_cast<double>(h.percentile(99)) / 1000.0, h.count()});
      });
  return out;
}

inline void print_stage_breakdown(const std::vector<StageSummary>& stages) {
  for (const StageSummary& s : stages) {
    std::printf("  stage %-10s p50 %9.1f us  p99 %9.1f us  (%llu spans)\n",
                s.stage.c_str(), s.p50_us, s.p99_us,
                static_cast<unsigned long long>(s.samples));
  }
}

/// Open-loop workload: calls `tick(scheduled)` at `rate_per_sec` for
/// `duration`. Every arrival time is fixed up front against an absolute
/// epoch (arrival k fires at epoch + k*period, never at "previous tick +
/// period"), and the tick receives its *scheduled* time — latency probes
/// must measure from it, not from loop.now() at emission. Chained relative
/// scheduling would let any tick that fires late push every later arrival
/// back, silently thinning the workload exactly when the system is slow —
/// the coordinated-omission failure mode the src/load driver exists to
/// avoid (see load/schedule.h).
inline void drive_open_loop(sim::EventLoop& loop, double rate_per_sec,
                            SimTime duration,
                            const std::function<void(SimTime scheduled)>& tick) {
  SimTime period = static_cast<SimTime>(kNanosPerSec / rate_per_sec);
  SimTime epoch = loop.now();
  SimTime end = epoch + duration;
  auto index = std::make_shared<std::uint64_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  *step = [&loop, period, epoch, end, tick, index, step] {
    // Issue everything due (a late wakeup issues the whole backlog), then
    // re-arm at the next absolute arrival time.
    for (;;) {
      SimTime scheduled = epoch + static_cast<SimTime>(*index) * period;
      if (scheduled >= end) return;
      if (scheduled > loop.now()) {
        loop.schedule(scheduled - loop.now(), *step);
        return;
      }
      ++*index;
      tick(scheduled);
    }
  };
  loop.schedule(0, *step);
  loop.run_until(end + millis(1));
}

inline void print_header(const char* figure, const char* title) {
  std::printf("\n=== %s: %s ===\n", figure, title);
}

inline void print_row(const std::string& system, double value,
                      const char* unit) {
  std::printf("%-34s %10.1f %s\n", system.c_str(), value, unit);
}

inline void print_note(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline double overhead_pct(double baseline, double value) {
  return baseline <= 0 ? 0.0 : 100.0 * (baseline - value) / baseline;
}

/// Nearest-rank percentile; `p` in [0, 100]. Sorts a copy.
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  std::size_t index = rank < 1 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

/// Machine-readable companion to the stdout report: collects named records
/// (ops/s plus optional latency samples) and writes `BENCH_<bench>.json` to
/// the working directory on write(), so the perf trajectory can be tracked
/// mechanically across commits.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  /// Adds one record. `latencies_us` may be empty: the record then carries
  /// only the rate and omits the percentile fields. `stages` attaches the
  /// per-stage latency breakdown (see stage_breakdown()).
  void add(const std::string& name, double ops_per_sec,
           std::vector<double> latencies_us = {},
           std::vector<StageSummary> stages = {}) {
    records_.push_back(Record{name, ops_per_sec, std::move(latencies_us),
                              std::move(stages)});
  }

  /// Writes BENCH_<bench>.json and prints the path to stdout.
  void write() const {
    std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"records\": [",
                 bench_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(out, "%s\n    {\"name\": \"%s\", \"ops_per_sec\": %.2f",
                   i == 0 ? "" : ",", r.name.c_str(), r.ops_per_sec);
      if (!r.latencies_us.empty()) {
        std::fprintf(out,
                     ", \"p50_us\": %.2f, \"p99_us\": %.2f, \"samples\": %zu",
                     percentile(r.latencies_us, 50.0),
                     percentile(r.latencies_us, 99.0), r.latencies_us.size());
      }
      if (!r.stages.empty()) {
        std::fprintf(out, ", \"stages\": [");
        for (std::size_t j = 0; j < r.stages.size(); ++j) {
          const StageSummary& s = r.stages[j];
          std::fprintf(out,
                       "%s{\"stage\": \"%s\", \"p50_us\": %.2f, "
                       "\"p99_us\": %.2f, \"samples\": %llu}",
                       j == 0 ? "" : ", ", s.stage.c_str(), s.p50_us,
                       s.p99_us, static_cast<unsigned long long>(s.samples));
        }
        std::fprintf(out, "]");
      }
      std::fprintf(out, "}");
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Record {
    std::string name;
    double ops_per_sec;
    std::vector<double> latencies_us;
    std::vector<StageSummary> stages;
  };

  std::string bench_;
  std::vector<Record> records_;
};

}  // namespace ss::bench
