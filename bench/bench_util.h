// Shared helpers for the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/baseline_deployment.h"
#include "core/replicated_deployment.h"

namespace ss::bench {

/// Open-loop workload: calls `tick` at `rate_per_sec` for `duration`,
/// starting at the loop's current time.
inline void drive_open_loop(sim::EventLoop& loop, double rate_per_sec,
                            SimTime duration,
                            const std::function<void()>& tick) {
  SimTime period = static_cast<SimTime>(kNanosPerSec / rate_per_sec);
  SimTime end = loop.now() + duration;
  std::function<void()> step = [&loop, period, end, tick, &step] {
    if (loop.now() >= end) return;
    tick();
    loop.schedule(period, step);
  };
  loop.schedule(0, step);
  loop.run_until(end + millis(1));
}

inline void print_header(const char* figure, const char* title) {
  std::printf("\n=== %s: %s ===\n", figure, title);
}

inline void print_row(const std::string& system, double value,
                      const char* unit) {
  std::printf("%-34s %10.1f %s\n", system.c_str(), value, unit);
}

inline void print_note(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

inline double overhead_pct(double baseline, double value) {
  return baseline <= 0 ? 0.0 : 100.0 * (baseline - value) / baseline;
}

/// Nearest-rank percentile; `p` in [0, 100]. Sorts a copy.
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  std::size_t index = rank < 1 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

/// Machine-readable companion to the stdout report: collects named records
/// (ops/s plus optional latency samples) and writes `BENCH_<bench>.json` to
/// the working directory on write(), so the perf trajectory can be tracked
/// mechanically across commits.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  /// Adds one record. `latencies_us` may be empty: the record then carries
  /// only the rate and omits the percentile fields.
  void add(const std::string& name, double ops_per_sec,
           std::vector<double> latencies_us = {}) {
    records_.push_back(
        Record{name, ops_per_sec, std::move(latencies_us)});
  }

  /// Writes BENCH_<bench>.json and prints the path to stdout.
  void write() const {
    std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"records\": [",
                 bench_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(out, "%s\n    {\"name\": \"%s\", \"ops_per_sec\": %.2f",
                   i == 0 ? "" : ",", r.name.c_str(), r.ops_per_sec);
      if (!r.latencies_us.empty()) {
        std::fprintf(out,
                     ", \"p50_us\": %.2f, \"p99_us\": %.2f, \"samples\": %zu",
                     percentile(r.latencies_us, 50.0),
                     percentile(r.latencies_us, 99.0), r.latencies_us.size());
      }
      std::fprintf(out, "}");
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Record {
    std::string name;
    double ops_per_sec;
    std::vector<double> latencies_us;
  };

  std::string bench_;
  std::vector<Record> records_;
};

}  // namespace ss::bench
