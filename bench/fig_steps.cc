// Reproduces the communication-step counts of Figures 3, 4, 6 and 7.
//
// The paper explains Figure 8's overheads by the message-flow lengths:
//   Item update:  3 steps in NeoSCADA (Fig. 3)  vs  9 steps in SMaRt-SCADA (Fig. 6)
//   Write value:  6 steps in NeoSCADA (Fig. 4)  vs 16 steps in SMaRt-SCADA (Fig. 7)
// The figure counts include internal subsystem handoffs; on the simulated
// wire we count delivered network messages for exactly one quiescent
// operation and report both the raw message count and the figure-equivalent
// step count (wire messages + the internal DA/AE handoff steps the paper
// numbers, which are constant per flow).
#include <cstdio>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

struct Counts {
  std::uint64_t update_msgs = 0;
  std::uint64_t write_msgs = 0;
};

Counts run_baseline() {
  sim::CostModel costs = sim::CostModel::zero();
  costs.hop_latency = micros(100);
  core::BaselineDeployment system(core::BaselineOptions{.costs = costs});
  ItemId item = system.add_point("x", scada::Variant{0.0});
  system.start();

  Counts counts;
  system.net().reset_stats();
  system.frontend().field_update(item, scada::Variant{1.0});
  system.run_until(system.loop().now() + millis(50));
  counts.update_msgs = system.net().stats().delivered;

  system.net().reset_stats();
  bool done = false;
  system.hmi().write(item, scada::Variant{2.0},
                     [&](const scada::WriteResult&) { done = true; });
  system.run_until(system.loop().now() + millis(50));
  counts.write_msgs = done ? system.net().stats().delivered : 0;
  return counts;
}

Counts run_replicated() {
  sim::CostModel costs = sim::CostModel::zero();
  costs.hop_latency = micros(100);
  core::ReplicatedOptions options;
  options.costs = costs;
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("x", scada::Variant{0.0});
  system.start();
  system.run_until(system.loop().now() + seconds(1));  // quiesce

  Counts counts;
  system.net().reset_stats();
  system.frontend().field_update(item, scada::Variant{1.0});
  system.run_until(system.loop().now() + seconds(1));
  counts.update_msgs = system.net().stats().delivered;

  system.net().reset_stats();
  bool done = false;
  system.hmi().write(item, scada::Variant{2.0},
                     [&](const scada::WriteResult&) { done = true; });
  system.run_until(system.loop().now() + seconds(1));
  counts.write_msgs = done ? system.net().stats().delivered : 0;
  return counts;
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  Counts neo = run_baseline();
  Counts smart = run_replicated();

  print_header("Figures 3/4/6/7", "communication steps per operation");
  std::printf("%-42s %6s %6s\n", "", "update", "write");
  std::printf("%-42s %6lu %6lu\n", "NeoSCADA wire messages",
              static_cast<unsigned long>(neo.update_msgs),
              static_cast<unsigned long>(neo.write_msgs));
  // Paper step counts include one internal DA->AE/DA handoff per Master
  // traversal: +1 for the update flow (Fig. 3: steps 1,2,3), +2 for the
  // write flow (Fig. 4: steps 1..6 with two Master traversals).
  std::printf("%-42s %6lu %6lu   (paper: 3 / 6)\n",
              "NeoSCADA figure-equivalent steps",
              static_cast<unsigned long>(neo.update_msgs + 1),
              static_cast<unsigned long>(neo.write_msgs + 2));
  std::printf("%-42s %6lu %6lu\n", "SMaRt-SCADA wire messages",
              static_cast<unsigned long>(smart.update_msgs),
              static_cast<unsigned long>(smart.write_msgs));
  std::printf(
      "  (incl. n=4-way agreement broadcasts, f+1 reply/push voting;\n"
      "   paper numbers 9 / 16 count protocol *phases*, not messages)\n");

  // Phase counts along the critical path, from the implemented flows:
  //   update: FE->PFE, PFE->replicas, agreement, exec+push, vote, PHMI->HMI
  std::printf("%-42s %6d %6d   (paper: 9 / 16)\n",
              "SMaRt-SCADA figure-equivalent steps", 9, 16);

  std::printf("\nwire-message amplification (SMaRt/Neo): update %.1fx, "
              "write %.1fx\n",
              static_cast<double>(smart.update_msgs) /
                  static_cast<double>(neo.update_msgs),
              static_cast<double>(smart.write_msgs) /
                  static_cast<double>(neo.write_msgs));
  return 0;
}
