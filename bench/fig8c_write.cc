// Reproduces Figure 8(c): Write value use case, synchronous writes.
//
// Workload (paper §V-B): the HMI performs synchronous writes to a
// Frontend item — one outstanding operation at a time, each waiting for its
// WriteResult. Paper result: ~450 writes/s (NeoSCADA) vs ~100 writes/s
// (SMaRt-SCADA), a 78% drop explained by the 10 additional communication
// steps (6 vs 16) and the single-threaded Master. With --drops the bench
// also exercises the logical-timeout protocol (paper §IV-D) under a
// Frontend whose replies are silently dropped.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(1);
constexpr SimTime kMeasure = seconds(20);

struct Result {
  double ops_per_sec = 0;
  std::vector<double> latencies_us;  ///< write -> WriteResult, measure window
};

/// Issues writes back-to-back: the next write starts when the previous
/// result arrives. Returns completed writes per second plus the per-write
/// round-trip latencies seen during the measure window.
///
/// Closed-loop caveat: this deliberately reproduces the paper's synchronous
/// workload, where there is no arrival schedule — each write's start time
/// *depends on* the previous result, so the latencies below are service
/// round-trips, not user-perceived waiting times, and throughput saturates
/// at 1/latency regardless of capacity. They must not be compared against
/// open-loop percentiles. For the coordinated-omission-safe version of this
/// workload (latency measured from a scheduled send time), run
/// `load_openloop --op write` (src/load).
template <typename System>
Result run_closed_loop(System& system, ItemId item) {
  std::uint64_t completed = 0;
  double value = 0;
  bool measuring = false;
  std::vector<double> latencies;
  std::function<void()> issue = [&] {
    SimTime issued = system.loop().now();
    system.hmi().write(item, scada::Variant{value},
                       [&, issued](const scada::WriteResult&) {
                         ++completed;
                         value += 1.0;
                         if (measuring) {
                           latencies.push_back(static_cast<double>(
                               system.loop().now() - issued) / 1000.0);
                         }
                         issue();
                       });
  };
  issue();
  system.run_until(system.loop().now() + kWarmup);
  measuring = true;
  std::uint64_t before = completed;
  system.run_until(system.loop().now() + kMeasure);
  return Result{static_cast<double>(completed - before) /
                    (static_cast<double>(kMeasure) / kNanosPerSec),
                std::move(latencies)};
}

Result run_baseline(const sim::CostModel& costs) {
  core::BaselineDeployment system(
      core::BaselineOptions{.costs = costs, .storage_retention = 1024});
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();
  return run_closed_loop(system, item);
}

Result run_replicated(const sim::CostModel& costs) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();
  return run_closed_loop(system, item);
}

/// Liveness under dropped WriteResults: every write times out, yet the HMI
/// keeps getting (timeout) results and the Masters never block.
void run_drops(const sim::CostModel& costs) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.write_timeout = millis(400);
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();
  system.net().set_policy(core::kFrontendEndpoint,
                          core::kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());

  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::function<void()> issue = [&] {
    system.hmi().write(item, scada::Variant{1.0},
                       [&](const scada::WriteResult& result) {
                         ++completed;
                         if (result.status == scada::WriteStatus::kTimeout) {
                           ++timeouts;
                         }
                         issue();
                       });
  };
  issue();
  system.run_until(system.loop().now() + seconds(20));

  print_header("Figure 8(c) --drops",
               "logical-timeout liveness (WriteResult dropped)");
  std::printf("  writes completed: %lu, all via logical timeout: %s\n",
              static_cast<unsigned long>(completed),
              completed == timeouts && completed > 0 ? "yes" : "NO");
  std::printf("  pending writes left in master 0: %zu (must be 0 or 1)\n",
              system.master(0).pending_write_count());
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();

  if (argc > 1 && std::strcmp(argv[1], "--drops") == 0) {
    run_drops(costs);
    return 0;
  }

  print_header("Figure 8(c)", "Write value use case, synchronous writes");
  reset_observability();
  Result neo = run_baseline(costs);
  std::vector<StageSummary> neo_stages = stage_breakdown();
  reset_observability();
  Result smart = run_replicated(costs);
  std::vector<StageSummary> smart_stages = stage_breakdown();
  print_row("NeoSCADA", neo.ops_per_sec, "writes/s  (paper: ~450)");
  print_row("SMaRt-SCADA", smart.ops_per_sec, "writes/s  (paper: ~100)");
  std::printf("%-34s %10.1f %%       (paper: ~78%%)\n", "overhead",
              overhead_pct(neo.ops_per_sec, smart.ops_per_sec));
  std::printf("%-34s p50 %.0f us  p99 %.0f us\n", "NeoSCADA write latency",
              percentile(neo.latencies_us, 50), percentile(neo.latencies_us, 99));
  std::printf("%-34s p50 %.0f us  p99 %.0f us\n", "SMaRt-SCADA write latency",
              percentile(smart.latencies_us, 50),
              percentile(smart.latencies_us, 99));
  print_note("SMaRt-SCADA per-stage breakdown (trace spans):");
  print_stage_breakdown(smart_stages);
  print_note(
      "note: closed-loop (synchronous) workload — latencies are service "
      "round-trips,");
  print_note(
      "      not schedule-anchored; see load_openloop --op write for the "
      "open-loop view");
  reset_observability();

  print_note("sensitivity (CPU costs scaled):");
  for (double scale : {0.5, 1.5}) {
    sim::CostModel scaled = costs.scaled_cpu(scale);
    double neo_s = run_baseline(scaled).ops_per_sec;
    double smart_s = run_replicated(scaled).ops_per_sec;
    std::printf("  x%.1f: NeoSCADA %7.1f  SMaRt-SCADA %7.1f  overhead %5.1f%%\n",
                scale, neo_s, smart_s, overhead_pct(neo_s, smart_s));
  }

  JsonReport json("fig8c_write");
  json.add("neoscada", neo.ops_per_sec, std::move(neo.latencies_us),
           std::move(neo_stages));
  json.add("smart_scada", smart.ops_per_sec, std::move(smart.latencies_us),
           std::move(smart_stages));
  json.write();

  run_drops(costs);
  return 0;
}
