// Reproduces Figure 8(c): Write value use case, synchronous writes.
//
// Workload (paper §V-B): the HMI performs synchronous writes to a
// Frontend item — one outstanding operation at a time, each waiting for its
// WriteResult. Paper result: ~450 writes/s (NeoSCADA) vs ~100 writes/s
// (SMaRt-SCADA), a 78% drop explained by the 10 additional communication
// steps (6 vs 16) and the single-threaded Master. With --drops the bench
// also exercises the logical-timeout protocol (paper §IV-D) under a
// Frontend whose replies are silently dropped.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(1);
constexpr SimTime kMeasure = seconds(20);

/// Issues writes back-to-back: the next write starts when the previous
/// result arrives. Returns completed writes per second.
template <typename System>
double run_closed_loop(System& system, ItemId item) {
  std::uint64_t completed = 0;
  double value = 0;
  std::function<void()> issue = [&] {
    system.hmi().write(item, scada::Variant{value},
                       [&](const scada::WriteResult&) {
                         ++completed;
                         value += 1.0;
                         issue();
                       });
  };
  issue();
  system.run_until(system.loop().now() + kWarmup);
  std::uint64_t before = completed;
  system.run_until(system.loop().now() + kMeasure);
  return static_cast<double>(completed - before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

double run_baseline(const sim::CostModel& costs) {
  core::BaselineDeployment system(
      core::BaselineOptions{.costs = costs, .storage_retention = 1024});
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();
  return run_closed_loop(system, item);
}

double run_replicated(const sim::CostModel& costs) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();
  return run_closed_loop(system, item);
}

/// Liveness under dropped WriteResults: every write times out, yet the HMI
/// keeps getting (timeout) results and the Masters never block.
void run_drops(const sim::CostModel& costs) {
  core::ReplicatedOptions options;
  options.costs = costs;
  options.write_timeout = millis(400);
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();
  system.net().set_policy(core::kFrontendEndpoint,
                          core::kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());

  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::function<void()> issue = [&] {
    system.hmi().write(item, scada::Variant{1.0},
                       [&](const scada::WriteResult& result) {
                         ++completed;
                         if (result.status == scada::WriteStatus::kTimeout) {
                           ++timeouts;
                         }
                         issue();
                       });
  };
  issue();
  system.run_until(system.loop().now() + seconds(20));

  print_header("Figure 8(c) --drops",
               "logical-timeout liveness (WriteResult dropped)");
  std::printf("  writes completed: %lu, all via logical timeout: %s\n",
              static_cast<unsigned long>(completed),
              completed == timeouts && completed > 0 ? "yes" : "NO");
  std::printf("  pending writes left in master 0: %zu (must be 0 or 1)\n",
              system.master(0).pending_write_count());
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) {
  using namespace ss;
  using namespace ss::bench;

  sim::CostModel costs = sim::CostModel::paper_testbed();

  if (argc > 1 && std::strcmp(argv[1], "--drops") == 0) {
    run_drops(costs);
    return 0;
  }

  print_header("Figure 8(c)", "Write value use case, synchronous writes");
  double neo = run_baseline(costs);
  double smart = run_replicated(costs);
  print_row("NeoSCADA", neo, "writes/s  (paper: ~450)");
  print_row("SMaRt-SCADA", smart, "writes/s  (paper: ~100)");
  std::printf("%-34s %10.1f %%       (paper: ~78%%)\n", "overhead",
              overhead_pct(neo, smart));

  print_note("sensitivity (CPU costs scaled):");
  for (double scale : {0.5, 1.5}) {
    sim::CostModel scaled = costs.scaled_cpu(scale);
    double neo_s = run_baseline(scaled);
    double smart_s = run_replicated(scaled);
    std::printf("  x%.1f: NeoSCADA %7.1f  SMaRt-SCADA %7.1f  overhead %5.1f%%\n",
                scale, neo_s, smart_s, overhead_pct(neo_s, smart_s));
  }

  run_drops(costs);
  return 0;
}
