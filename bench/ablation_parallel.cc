// Ablation: parallel execution support (paper §VII-b).
//
// "We do not dispute alternatives to our implementation ... for example, by
// using a BFT library that supports multi-threading [CBASE, Eve] or by
// adding parallel execution support to BFT-SMaRt (as recently done by
// Alchieri et al.)." This bench quantifies that future-work claim: the
// SMaRt-SCADA update pipeline with 1 executor lane (the paper's
// single-threaded prototype) vs conflict-partitioned parallel execution
// (k lanes, operations on different items run concurrently), at increasing
// offered load, with the updates spread over 1 or 16 items.
#include <cstdio>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(2);
constexpr SimTime kMeasure = seconds(10);

double run(double rate, std::uint32_t executor_lanes, int items) {
  core::ReplicatedOptions options;
  options.costs = sim::CostModel::paper_testbed();
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  options.executor_lanes = executor_lanes;
  core::ReplicatedDeployment system(options);

  std::vector<ItemId> points;
  for (int i = 0; i < items; ++i) {
    points.push_back(system.add_point("feeder/" + std::to_string(i)));
  }
  system.start();

  std::uint64_t count = 0;
  auto tick = [&] {
    system.frontend().field_update(points[count % points.size()],
                                   scada::Variant{double(count)});
    ++count;
  };
  drive_open_loop(system.loop(), rate, kWarmup, tick);
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), rate, kMeasure, tick);
  return static_cast<double>(system.hmi().counters().updates_received -
                             before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  print_header("Ablation: parallel execution (paper SVII-b)",
               "delivered ItemUpdate/s vs offered load");
  std::printf("%-38s %8s %8s %8s\n", "configuration", "1000/s", "2000/s",
              "4000/s");
  struct Config {
    const char* label;
    std::uint32_t lanes;
    int items;
  };
  for (const Config& config :
       {Config{"single-threaded (paper), 1 item", 1, 1},
        Config{"single-threaded (paper), 16 items", 1, 16},
        Config{"parallel executor k=4, 1 item", 4, 1},
        Config{"parallel executor k=4, 16 items", 4, 16},
        Config{"parallel executor k=8, 16 items", 8, 16}}) {
    std::printf("%-38s", config.label);
    for (double rate : {1000.0, 2000.0, 4000.0}) {
      std::printf(" %8.0f", run(rate, config.lanes, config.items));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: offloading execution from the protocol thread already\n"
      "helps (even one conflict group), and with independent items\n"
      "CBASE-style parallel execution removes the ceiling the paper\n"
      "attributes to the determinism refactor. At 4000/s the protocol\n"
      "thread itself saturates on request receipt - a deeper bottleneck\n"
      "no execution-side parallelism can fix.\n");
  return 0;
}
