// Ablation: parallel execution support (paper §VII-b).
//
// "We do not dispute alternatives to our implementation ... for example, by
// using a BFT library that supports multi-threading [CBASE, Eve] or by
// adding parallel execution support to BFT-SMaRt (as recently done by
// Alchieri et al.)." This bench quantifies that future-work claim: the
// SMaRt-SCADA update pipeline with 1 executor lane (the paper's
// single-threaded prototype) vs conflict-partitioned parallel execution
// (k lanes, operations on different items run concurrently), at increasing
// offered load, with the updates spread over 1 or 16 items.
// PR 6 adds the other half of the ablation: real threads. The second table
// runs the raw BFT layer (bft_raw's null service) over UDP loopback with
// one OS thread per replica transport, sweeping the crypto/codec runner
// (core/runner.h) from inline through pooled:{1,2,4,8} workers, and emits
// BENCH_parallel.json with ops/s and p99 per worker count.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "core/runner.h"
#include "net/resolver.h"
#include "net/socket_transport.h"

namespace ss::bench {
namespace {

constexpr SimTime kWarmup = seconds(2);
constexpr SimTime kMeasure = seconds(10);

double run(double rate, std::uint32_t executor_lanes, int items) {
  core::ReplicatedOptions options;
  options.costs = sim::CostModel::paper_testbed();
  options.storage_retention = 1024;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  options.executor_lanes = executor_lanes;
  core::ReplicatedDeployment system(options);

  std::vector<ItemId> points;
  for (int i = 0; i < items; ++i) {
    points.push_back(system.add_point("feeder/" + std::to_string(i)));
  }
  system.start();

  std::uint64_t count = 0;
  auto tick = [&](SimTime) {
    system.frontend().field_update(points[count % points.size()],
                                   scada::Variant{double(count)});
    ++count;
  };
  drive_open_loop(system.loop(), rate, kWarmup, tick);
  std::uint64_t before = system.hmi().counters().updates_received;
  drive_open_loop(system.loop(), rate, kMeasure, tick);
  return static_cast<double>(system.hmi().counters().updates_received -
                             before) /
         (static_cast<double>(kMeasure) / kNanosPerSec);
}

// ---------------------------------------------------------------------------
// Real-thread sweep: raw BFT over UDP loopback, one thread per replica.

/// Null service (same shape as bft_raw): tiny ack, counter as state.
class NullApp final : public bft::Executable, public bft::Recoverable {
 public:
  Bytes execute_ordered(const bft::ExecuteContext&, ByteView) override {
    ++executed_;
    Writer w(1);
    w.u8(1);
    return std::move(w).take();
  }
  Bytes execute_unordered(ClientId, ByteView) override {
    Writer w(1);
    w.u8(1);
    return std::move(w).take();
  }
  Bytes snapshot() const override {
    Writer w(8);
    w.varint(executed_);
    return std::move(w).take();
  }
  void restore(ByteView data) override {
    Reader r(data);
    executed_ = r.varint();
  }

 private:
  std::uint64_t executed_ = 0;
};

struct SocketResult {
  double ops_per_sec = 0;
  std::vector<double> latencies_us;
};

/// One full raw-BFT run over loopback UDP. `workers` == 0 selects the
/// InlineRunner (everything on the poll thread); otherwise each replica
/// gets a PooledOrderedRunner with that many workers, drained through the
/// transport's pollable eventfd exactly as examples/deploy wires it.
SocketResult run_socket(std::uint32_t workers, std::uint16_t base_port) {
  const GroupConfig group = GroupConfig::for_f(1);
  const crypto::Keychain keys("ablation-parallel");

  net::Resolver resolver;
  for (ReplicaId id : group.replica_ids()) {
    resolver.add("replica/" + std::to_string(id.value),
                 {"127.0.0.1",
                  static_cast<std::uint16_t>(base_port + id.value)});
  }
  resolver.add("client/1",
               {"127.0.0.1", static_cast<std::uint16_t>(base_port + group.n)});

  bft::ReplicaOptions options;  // zero virtual CPU costs: real CPUs are real
  options.max_batch = 256;
  options.checkpoint_interval = 1 << 20;
  options.request_timeout = seconds(30);  // no leader suspicion under load

  // Construction order doubles as destruction order (reverse): runners are
  // declared after replicas so their workers stop and join while the
  // replicas they reference are still alive.
  std::vector<std::unique_ptr<net::SocketTransport>> transports;
  std::vector<std::unique_ptr<NullApp>> apps;
  std::vector<std::unique_ptr<bft::Replica>> replicas;
  std::vector<std::unique_ptr<core::Runner>> runners;
  for (ReplicaId id : group.replica_ids()) {
    transports.push_back(std::make_unique<net::SocketTransport>(resolver));
    apps.push_back(std::make_unique<NullApp>());
    replicas.push_back(std::make_unique<bft::Replica>(
        *transports.back(), group, id, keys, *apps.back(), *apps.back(),
        options));
    if (workers > 0) {
      core::RunnerOptions runner_options;
      runner_options.tag = "bench-" + std::to_string(id.value);
      // All four replicas live in this one process: runner metrics would
      // have their poll threads racing on the global obs registry, so the
      // bench keeps them off (deploy runs one process per replica and keeps
      // them on).
      runner_options.metrics = false;
      runners.push_back(std::make_unique<core::PooledOrderedRunner>(
          workers, runner_options));
      replicas.back()->set_runner(runners.back().get());
      core::Runner* runner = runners.back().get();
      transports.back()->add_pollable(runner->notify_fd(),
                                      [runner] { runner->drain(); });
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> loops;
  for (auto& transport : transports) {
    transport->set_interrupt_check([&stop] { return stop.load(); });
    loops.emplace_back([&transport] { transport->run(); });
  }

  net::SocketTransport client_net(resolver);
  bft::ClientProxy client(client_net, group, ClientId{1}, keys,
                          bft::ClientOptions{.reply_timeout = seconds(2)});

  constexpr std::uint32_t kDepth = 64;
  constexpr std::size_t kPayload = 1024;
  constexpr SimTime kSocketWarmup = seconds(1);
  constexpr SimTime kSocketMeasure = seconds(2);

  Bytes payload(kPayload, 0x5a);
  std::uint64_t completed = 0;
  bool measuring = false;
  std::deque<SimTime> issued;
  std::vector<double> latencies;
  std::function<void(Bytes)> on_reply = [&](Bytes) {
    ++completed;
    if (!issued.empty()) {
      if (measuring) {
        latencies.push_back(
            static_cast<double>(client_net.now() - issued.front()) / 1000.0);
      }
      issued.pop_front();
    }
    issued.push_back(client_net.now());
    client.invoke_ordered(payload, on_reply);
  };
  for (std::uint32_t i = 0; i < kDepth; ++i) {
    issued.push_back(client_net.now());
    client.invoke_ordered(payload, on_reply);
  }

  client_net.run_until([] { return false; }, kSocketWarmup);
  measuring = true;
  const std::uint64_t before = completed;
  const SimTime measure_start = client_net.now();
  client_net.run_until([] { return false; }, kSocketMeasure);
  const SimTime elapsed = client_net.now() - measure_start;

  stop.store(true);
  for (std::thread& t : loops) t.join();

  return SocketResult{elapsed > 0
                          ? static_cast<double>(completed - before) /
                                (static_cast<double>(elapsed) / kNanosPerSec)
                          : 0.0,
                      std::move(latencies)};
}

}  // namespace
}  // namespace ss::bench

int main() {
  using namespace ss;
  using namespace ss::bench;

  print_header("Ablation: parallel execution (paper SVII-b)",
               "delivered ItemUpdate/s vs offered load");
  std::printf("%-38s %8s %8s %8s\n", "configuration", "1000/s", "2000/s",
              "4000/s");
  struct Config {
    const char* label;
    std::uint32_t lanes;
    int items;
  };
  for (const Config& config :
       {Config{"single-threaded (paper), 1 item", 1, 1},
        Config{"single-threaded (paper), 16 items", 1, 16},
        Config{"parallel executor k=4, 1 item", 4, 1},
        Config{"parallel executor k=4, 16 items", 4, 16},
        Config{"parallel executor k=8, 16 items", 8, 16}}) {
    std::printf("%-38s", config.label);
    for (double rate : {1000.0, 2000.0, 4000.0}) {
      std::printf(" %8.0f", run(rate, config.lanes, config.items));
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: offloading execution from the protocol thread already\n"
      "helps (even one conflict group), and with independent items\n"
      "CBASE-style parallel execution removes the ceiling the paper\n"
      "attributes to the determinism refactor. At 4000/s the protocol\n"
      "thread itself saturates on request receipt - a deeper bottleneck\n"
      "no execution-side parallelism can fix.\n");

  print_header("Crypto/codec runner sweep (real threads)",
               "raw BFT over UDP loopback, 1024 B, pipeline depth 64");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("%-12s %14s %12s %12s\n", "runner", "requests/s", "p50 (us)",
              "p99 (us)");
  // Distinct port block per run/process so back-to-back invocations (and
  // lingering sockets in TIME_WAIT) never collide.
  std::uint16_t base_port =
      static_cast<std::uint16_t>(21000 + (getpid() % 1500) * 8);
  JsonReport json("parallel");
  struct Sweep {
    const char* label;
    std::uint32_t workers;
  };
  int step = 0;
  for (const Sweep& sweep :
       {Sweep{"inline", 0}, Sweep{"pooled:1", 1}, Sweep{"pooled:2", 2},
        Sweep{"pooled:4", 4}, Sweep{"pooled:8", 8}}) {
    SocketResult result = run_socket(
        sweep.workers,
        static_cast<std::uint16_t>(base_port + 8 * step++));
    std::printf("%-12s %14.0f %12.0f %12.0f\n", sweep.label,
                result.ops_per_sec, percentile(result.latencies_us, 50),
                percentile(result.latencies_us, 99));
    json.add(sweep.label, result.ops_per_sec, std::move(result.latencies_us));
  }
  json.write();
  std::printf(
      "\nreading: with enough cores, moving HMAC verify/sign and codec\n"
      "work off the poll thread onto pooled workers raises the raw-BFT\n"
      "ceiling; on a single-core host the sweep is flat (the workers just\n"
      "time-slice the one CPU) - compare against the multi-core CI run.\n");
  return 0;
}
