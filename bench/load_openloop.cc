// Open-loop load generator for the SMaRt-SCADA deployment (src/load driver).
//
// Spawns thousands of virtual HMI/frontend clients as interleaved seeded
// arrival streams (load::generate_schedule) and fires them through ONE HMI
// core + ProxyHMI and ONE Frontend core + ProxyFrontend against a 3f+1
// replica group — so "5000 clients" costs two UDP ports, not ten thousand,
// while the arrival process is indistinguishable from 5000 independent
// senders. Every latency sample is measured from the operation's
// *scheduled* send time (coordinated-omission-safe; see load/schedule.h).
//
// Two backends over the same Transport seam:
//  * --mode socket (default): forks the `deploy` binary's replica role
//    n = 3f+1 times and drives them over real UDP from an in-process
//    SocketTransport. No RTU or separate frontend process is needed: the
//    Frontend core lives here, and without a field writer its writes apply
//    locally and succeed immediately — the measured path is the full
//    HMI -> agreement -> frontend -> agreement -> voted-reply loop.
//  * --mode sim: the deterministic in-process ReplicatedDeployment in
//    virtual time (CI-stable numbers, no sockets).
//
// Workloads: --op write (HMI operator writes, the fig8c use case),
// --op update (Frontend field updates pushed to the HMI, the fig8a use
// case), --op mixed (alternating). Shapes: fixed | poisson | burst.
//
// Emits BENCH_<name>.json (schema in load/report.h) with per-run records:
// goodput, timeout rate, full latency distribution, pump slip, and the
// transport RX-batching counters (recvmmsg batch sizes) as extras.
// Exit status is nonzero if any run completes zero operations.
//
// Examples:
//   load_openloop --mode socket --op write --rate 500 --duration 5
//   load_openloop --mode socket --op update --shape burst --rate 1000
//       --clients 2000 --sweep 250,500,1000
//   load_openloop --mode sim --op mixed --rate 800 --duration 10
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/proxies.h"
#include "core/nodes.h"
#include "core/replicated_deployment.h"
#include "core/scada_link.h"
#include "crypto/keychain.h"
#include "load/driver.h"
#include "load/report.h"
#include "load/schedule.h"
#include "net/resolver.h"
#include "net/socket_transport.h"
#include "obs/metrics.h"
#include "scada/frontend.h"
#include "scada/handlers.h"
#include "scada/hmi.h"

using namespace ss;

namespace {

// Must match the registration order in examples/deploy.cpp: item ids are
// dense by registration order and agreed system-wide.
constexpr ItemId kTemperature{1};
constexpr ItemId kSetpoint{2};
const char* kTemperatureName = "plant/reactor/temperature";
const char* kSetpointName = "plant/reactor/setpoint";
const char* kGroupSecret = "smart-scada-secret";

struct Options {
  std::string mode = "socket";  // socket | sim
  std::string op = "write";     // write | update | mixed
  load::ScheduleOptions schedule;
  SimTime op_timeout = seconds(2);
  std::uint32_t f = 1;
  std::uint16_t base_port = 0;
  std::string out_dir = ".";
  std::string bench = "load";     // output file: BENCH_<bench>.json
  std::string name = "openloop";  // record name prefix
  std::string deploy;             // path to the deploy binary (socket mode)
  std::vector<double> sweep;      // extra rates; empty = single run at --rate
  std::vector<double> sweep_burst;  // burst multipliers; overrides --sweep
  /// >= 0: this percentage of updates trips the replicas' alarm Monitor
  /// (SS_ALARM_THRESHOLD) — the fig8b AE-subsystem storm over sockets.
  int alarm_pct = -1;
  /// > 0 (socket mode): SIGKILL one replica round-robin every period and
  /// respawn it 200 ms later — proactive recovery under load.
  long proactive_period_ms = 0;
};

double parse_double(const char* v) { return std::strtod(v, nullptr); }
long parse_long(const char* v) { return std::strtol(v, nullptr, 10); }

int usage() {
  std::fprintf(
      stderr,
      "usage: load_openloop [--mode socket|sim] [--op write|update|mixed]\n"
      "         [--shape fixed|poisson|burst] [--rate OPS] [--duration S]\n"
      "         [--clients N] [--seed X] [--timeout MS] [--f N]\n"
      "         [--burst-mult M] [--burst-period-ms MS] [--burst-len-ms MS]\n"
      "         [--sweep R1,R2,...] [--sweep-burst M1,M2,...]\n"
      "         [--alarm-pct P] [--proactive-period MS]\n"
      "         [--base-port P] [--deploy PATH]\n"
      "         [--out DIR] [--bench NAME] [--name NAME]\n"
      "env:   SS_RX_BATCH / SS_BUSY_POLL are honored by this process and\n"
      "       inherited by the spawned replicas (socket mode)\n");
  return 2;
}

/// The per-run issuer state shared between the schedule driver and the HMI
/// update callback: field updates are matched back to their arrival index
/// through the pushed value (value = base + index, the fig8a trick), writes
/// through the HMI's own OpId-keyed result callback.
struct Workload {
  std::string op;
  /// >= 0: that share of updates trips the replicas' alarm Monitor. The
  /// magnitude still encodes the arrival index (update_base >= 1e9 keeps it
  /// far above SS_ALARM_THRESHOLD = 100) and the *sign* picks alarm
  /// (positive) vs normal (negative, far below any threshold).
  int alarm_pct = -1;
  scada::Hmi* hmi = nullptr;
  scada::Frontend* frontend = nullptr;
  double update_base = 0;  ///< distinguishes runs in one process
  std::vector<load::OpenLoopDriver::CompletionFn> update_done;

  bool is_write(const load::Arrival& a) const {
    if (op == "write") return true;
    if (op == "update") return false;
    return (a.index & 1) != 0;  // mixed: even = update, odd = write
  }

  void issue(const load::Arrival& a, load::OpenLoopDriver::CompletionFn done) {
    if (is_write(a)) {
      hmi->write(kSetpoint,
                 scada::Variant{21.0 + static_cast<double>(a.index % 64)},
                 [done](const scada::WriteResult& r) {
                   done(r.status == scada::WriteStatus::kOk);
                 });
    } else {
      update_done[a.index] = std::move(done);
      double value = update_base + static_cast<double>(a.index);
      if (alarm_pct >= 0) {
        bool alarm =
            (a.index + 1) * static_cast<std::uint64_t>(alarm_pct) / 100 !=
            a.index * static_cast<std::uint64_t>(alarm_pct) / 100;
        if (!alarm) value = -value;
      }
      frontend->field_update(kTemperature, scada::Variant{value});
    }
  }

  /// Install on the HMI once per run, before start().
  void on_update(const scada::ItemUpdate& update) {
    if (update.item != kTemperature) return;
    double raw = update.value.as_double();
    double rel = (alarm_pct >= 0 ? std::fabs(raw) : raw) - update_base;
    if (rel < 0 || rel >= static_cast<double>(update_done.size())) return;
    auto index = static_cast<std::size_t>(rel);
    if (update_done[index]) update_done[index](true);
  }
};

/// Transport RX counters attached to each record so the report shows the
/// recvmmsg fast path working (batch sizes > 1 under load). Counter fields
/// are deltas over the run; the batch-size distribution is read from the
/// process-global net.rx_batch_size histogram.
void attach_rx_extras(load::RunRecord& record, const net::SocketStats& before,
                      const net::SocketStats& after) {
  double batches =
      static_cast<double>(after.rx_batches - before.rx_batches);
  double datagrams =
      static_cast<double>(after.datagrams_received - before.datagrams_received);
  record.extras.emplace_back("net_rx_batches", batches);
  record.extras.emplace_back("net_rx_datagrams", datagrams);
  record.extras.emplace_back("net_rx_ring_full",
                             static_cast<double>(after.rx_ring_full -
                                                 before.rx_ring_full));
  record.extras.emplace_back("net_rx_batch_mean",
                             batches > 0 ? datagrams / batches : 0.0);
  const obs::Histogram& h =
      obs::Registry::instance().histogram("net.rx_batch_size");
  record.extras.emplace_back("net_rx_batch_max",
                             static_cast<double>(h.max()));
  record.extras.emplace_back("net_rx_batch_p99",
                             static_cast<double>(h.percentile(99)));
}

// ---------------------------------------------------------------------------
// Socket mode: fork `deploy replica` processes, drive them over real UDP.

std::string locate_deploy(const std::string& override_path) {
  if (!override_path.empty()) return override_path;
  if (const char* env = std::getenv("SS_DEPLOY")) return env;
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string dir(buf);
    std::size_t slash = dir.rfind('/');
    if (slash != std::string::npos) dir.resize(slash);
    for (const std::string& cand :
         {dir + "/../examples/deploy", dir + "/deploy"}) {
      if (::access(cand.c_str(), X_OK) == 0) return cand;
    }
  }
  return "deploy";  // hope it is on PATH
}

class SocketHarness {
 public:
  SocketHarness(const Options& opt) : opt_(opt) {
    deploy_ = locate_deploy(opt.deploy);
    base_port_ = opt.base_port != 0
                     ? opt.base_port
                     : static_cast<std::uint16_t>(
                           41000 + (::getpid() % 8000) * 2);
    group_ = GroupConfig::for_f(opt.f);
    if (opt_.alarm_pct >= 0) {
      // The spawned replicas attach a Monitor to the temperature point so
      // the 'update' workload exercises the AE subsystem (fig8b).
      ::setenv("SS_ALARM_THRESHOLD", "100", /*overwrite=*/0);
    }
    if (opt_.proactive_period_ms > 0 &&
        std::getenv("SS_STATE_DIR") == nullptr) {
      // Proactive reincarnation is only meaningful with durable state: the
      // killed replica must reboot from its checkpoint + WAL, not from
      // scratch. Give the group a throwaway state root if none was set.
      char tmpl[] = "/tmp/smart-scada-load-state-XXXXXX";
      if (::mkdtemp(tmpl) != nullptr) {
        ::setenv("SS_STATE_DIR", tmpl, 1);
        ::setenv("SS_CHECKPOINT_INTERVAL", "16", /*overwrite=*/0);
      }
    }
    write_config();
    spawn_replicas();
    ::usleep(300 * 1000);  // let the replicas bind before we start asking

    transport_ = std::make_unique<net::SocketTransport>(
        net::Resolver::from_file(config_), net::socket_options_from_env());
    keys_ = std::make_unique<crypto::Keychain>(kGroupSecret);

    // HMI side (the operator): Hmi core + ProxyHMI, exactly as `deploy hmi`.
    hmi_ = std::make_unique<scada::Hmi>(
        scada::HmiOptions{.subscriber_name = core::kHmiEndpoint});
    core::ProxyOptions hmi_proxy_options;
    hmi_proxy_options.endpoint = core::kProxyHmiEndpoint;
    hmi_proxy_options.component_endpoint = core::kHmiEndpoint;
    hmi_proxy_ = std::make_unique<core::ComponentProxy>(
        *transport_, group_, ClientId{core::kProxyHmiClient}, *keys_,
        hmi_proxy_options);
    hmi_node_ = std::make_unique<core::HmiNode>(
        *transport_, *keys_, *hmi_,
        core::NodeOptions{.endpoint = core::kHmiEndpoint,
                          .peer = core::kProxyHmiEndpoint});

    // Frontend side (the field): Frontend core + ProxyFrontend, as `deploy
    // frontend` but with no RTU driver — writes succeed locally, which is
    // what a load harness wants (the field bus is not the system under
    // test).
    frontend_ = std::make_unique<scada::Frontend>(
        scada::FrontendOptions{.instance_id = 1});
    frontend_->add_item(kTemperatureName);
    frontend_->add_item(kSetpointName, scada::Variant{20.0});
    core::ProxyOptions fe_proxy_options;
    fe_proxy_options.endpoint = core::kProxyFrontendEndpoint;
    fe_proxy_options.component_endpoint = core::kFrontendEndpoint;
    frontend_proxy_ = std::make_unique<core::ComponentProxy>(
        *transport_, group_, ClientId{core::kProxyFrontendClient}, *keys_,
        fe_proxy_options);
    frontend_node_ = std::make_unique<core::FrontendNode>(
        *transport_, *keys_, *frontend_,
        core::NodeOptions{.endpoint = core::kFrontendEndpoint,
                          .peer = core::kProxyFrontendEndpoint});
  }

  ~SocketHarness() {
    // Tear down the transport (and everything attached to it) before the
    // replicas go away, then reap the children.
    frontend_node_.reset();
    frontend_proxy_.reset();
    hmi_node_.reset();
    hmi_proxy_.reset();
    transport_.reset();
    for (pid_t pid : replicas_) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    for (pid_t pid : replicas_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
    if (!config_.empty()) ::unlink(config_.c_str());
  }

  /// Subscribes the HMI and proves both op paths end-to-end (one write,
  /// one field update) before any measurement. Returns false if the group
  /// never becomes live.
  bool warm_up() {
    hmi_->subscribe_all();
    SimTime deadline = transport_->now() + seconds(30);
    while (transport_->now() < deadline) {
      bool write_done = false;
      bool write_ok = false;
      hmi_->write(kSetpoint, scada::Variant{20.0},
                  [&](const scada::WriteResult& r) {
                    write_done = true;
                    write_ok = r.status == scada::WriteStatus::kOk;
                  });
      frontend_->field_update(kTemperature, scada::Variant{-1.0});
      transport_->run_until(
          [&] { return write_done && hmi_->item(kTemperature) != nullptr; },
          seconds(2));
      if (write_done && write_ok && hmi_->item(kTemperature) != nullptr) {
        return true;
      }
    }
    return false;
  }

  load::RunRecord run(const std::string& name,
                      const load::ScheduleOptions& schedule_opt) {
    Workload workload;
    workload.op = opt_.op;
    workload.alarm_pct = opt_.alarm_pct;
    workload.hmi = hmi_.get();
    workload.frontend = frontend_.get();
    workload.update_base = static_cast<double>(++run_counter_) * 1e9;

    std::vector<load::Arrival> schedule = load::generate_schedule(schedule_opt);
    workload.update_done.resize(schedule.size());
    hmi_->set_update_callback(
        [&workload](const scada::ItemUpdate& u) { workload.on_update(u); });

    net::SocketStats before = transport_->stats();
    std::uint64_t reinc_before = reincarnations_;
    load::DriverOptions driver_opt;
    driver_opt.op_timeout = opt_.op_timeout;
    load::OpenLoopDriver driver(
        *transport_, std::move(schedule),
        [&workload](const load::Arrival& a,
                    load::OpenLoopDriver::CompletionFn done) {
          workload.issue(a, std::move(done));
        },
        driver_opt);
    driver.start();
    SimTime deadline = transport_->now() + schedule_opt.duration +
                       opt_.op_timeout + seconds(5);
    if (opt_.proactive_period_ms > 0 && next_kill_at_ == 0) {
      next_kill_at_ = transport_->now() + millis(opt_.proactive_period_ms);
    }
    while (!driver.finished() && transport_->now() < deadline) {
      transport_->run_until([&] { return driver.finished(); }, millis(50));
      maybe_reincarnate();
    }

    load::RunRecord record =
        load::RunRecord::from_driver(name, opt_.op, schedule_opt, driver);
    attach_rx_extras(record, before, transport_->stats());
    if (opt_.proactive_period_ms > 0) {
      record.extras.emplace_back(
          "proactive_reincarnations",
          static_cast<double>(reincarnations_ - reinc_before));
    }
    hmi_->set_update_callback({});
    return record;
  }

  std::uint64_t reincarnations() const { return reincarnations_; }

 private:
  void write_config() {
    config_ = "/tmp/smart-scada-load-" + std::to_string(::getpid()) + ".conf";
    std::string cmd = deploy_ + " config --f " + std::to_string(opt_.f) +
                      " --base-port " + std::to_string(base_port_);
    std::FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      throw std::runtime_error("load_openloop: cannot run: " + cmd);
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
      text.append(buf, n);
    }
    int rc = ::pclose(pipe);
    if (rc != 0 || text.empty()) {
      throw std::runtime_error("load_openloop: `" + cmd +
                               "` failed; pass --deploy PATH");
    }
    std::ofstream out(config_);
    out << text;
  }

  pid_t spawn_replica(std::uint32_t i) {
    const std::string fs = std::to_string(opt_.f);
    pid_t pid = ::fork();
    if (pid == 0) {
      std::string id = std::to_string(i);
      const char* argv[] = {deploy_.c_str(), "replica",
                            "--id",          id.c_str(),
                            "--f",           fs.c_str(),
                            "--config",      config_.c_str(),
                            nullptr};
      ::execv(deploy_.c_str(), const_cast<char**>(argv));
      std::perror("execv deploy replica");
      std::_Exit(127);
    }
    return pid;
  }

  void spawn_replicas() {
    for (std::uint32_t i = 0; i < group_.n; ++i) {
      replicas_.push_back(spawn_replica(i));
    }
  }

  /// Proactive recovery under load (--proactive-period): SIGKILL one replica
  /// round-robin per period and respawn it 200 ms later. With SS_STATE_DIR
  /// set the restarted process reboots from its checkpoint + WAL and rejoins
  /// on a fresh session-key epoch — the same policy `deploy --supervise`
  /// runs with SS_PROACTIVE_PERIOD.
  void maybe_reincarnate() {
    if (opt_.proactive_period_ms <= 0) return;
    SimTime now = transport_->now();
    if (respawn_at_ != 0 && now >= respawn_at_) {
      replicas_.at(victim_) = spawn_replica(victim_);
      respawn_at_ = 0;
      ++reincarnations_;
      std::fprintf(stderr,
                   "load_openloop: proactive reincarnation #%llu of "
                   "replica/%u\n",
                   static_cast<unsigned long long>(reincarnations_), victim_);
    }
    if (respawn_at_ == 0 && next_kill_at_ != 0 && now >= next_kill_at_) {
      victim_ = next_victim_;
      next_victim_ = (next_victim_ + 1) % group_.n;
      if (replicas_.at(victim_) > 0) {
        ::kill(replicas_.at(victim_), SIGKILL);
        ::waitpid(replicas_.at(victim_), nullptr, 0);
      }
      respawn_at_ = now + millis(200);
      next_kill_at_ = now + millis(opt_.proactive_period_ms);
    }
  }

  Options opt_;
  std::string deploy_;
  std::string config_;
  std::uint16_t base_port_ = 0;
  GroupConfig group_ = GroupConfig::for_f(1);
  std::vector<pid_t> replicas_;
  std::uint64_t run_counter_ = 0;

  // --proactive-period bookkeeping.
  std::uint32_t next_victim_ = 0;
  std::uint32_t victim_ = 0;
  SimTime next_kill_at_ = 0;   ///< 0 until the first run arms the timer
  SimTime respawn_at_ = 0;     ///< nonzero while a victim is down
  std::uint64_t reincarnations_ = 0;

  std::unique_ptr<net::SocketTransport> transport_;
  std::unique_ptr<crypto::Keychain> keys_;
  std::unique_ptr<scada::Hmi> hmi_;
  std::unique_ptr<core::ComponentProxy> hmi_proxy_;
  std::unique_ptr<core::HmiNode> hmi_node_;
  std::unique_ptr<scada::Frontend> frontend_;
  std::unique_ptr<core::ComponentProxy> frontend_proxy_;
  std::unique_ptr<core::FrontendNode> frontend_node_;
};

// ---------------------------------------------------------------------------
// Sim mode: the deterministic in-process deployment, virtual time.

load::RunRecord run_sim(const Options& opt, const std::string& name,
                        const load::ScheduleOptions& schedule_opt) {
  core::ReplicatedOptions sys_opt;
  sys_opt.group = GroupConfig::for_f(opt.f);
  sys_opt.storage_retention = 1024;
  sys_opt.checkpoint_interval = 4096;
  // Open-loop overload must queue, not trigger retransmit storms or view
  // changes (see fig8a_update.cc for the same reasoning).
  sys_opt.client_reply_timeout = seconds(60);
  sys_opt.request_timeout = seconds(60);
  core::ReplicatedDeployment system(sys_opt);
  ItemId temperature = system.add_point(kTemperatureName);
  ItemId setpoint = system.add_point(kSetpointName, scada::Variant{20.0});
  (void)setpoint;
  if (opt.alarm_pct >= 0) {
    system.configure_masters([temperature](scada::ScadaMaster& master) {
      master.handlers(temperature).emplace<scada::MonitorHandler>(
          scada::MonitorHandler::Condition::kAbove, 100.0);
    });
  }
  system.start();

  Workload workload;
  workload.op = opt.op;
  workload.alarm_pct = opt.alarm_pct;
  workload.hmi = &system.hmi();
  workload.frontend = &system.frontend();
  workload.update_base = 1e9;

  std::vector<load::Arrival> schedule = load::generate_schedule(schedule_opt);
  workload.update_done.resize(schedule.size());
  system.hmi().set_update_callback(
      [&workload](const scada::ItemUpdate& u) { workload.on_update(u); });

  load::DriverOptions driver_opt;
  driver_opt.op_timeout = opt.op_timeout;
  load::OpenLoopDriver driver(
      system.net(), std::move(schedule),
      [&workload](const load::Arrival& a,
                  load::OpenLoopDriver::CompletionFn done) {
        workload.issue(a, std::move(done));
      },
      driver_opt);
  driver.start();
  SimTime hard_stop =
      system.loop().now() + schedule_opt.duration + opt.op_timeout + seconds(5);
  while (!driver.finished() && system.loop().now() < hard_stop) {
    system.run_until(std::min<SimTime>(system.loop().now() + millis(100),
                                       hard_stop));
  }
  load::RunRecord record =
      load::RunRecord::from_driver(name, opt.op, schedule_opt, driver);
  system.hmi().set_update_callback({});
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage();
    const char* v = argv[++i];
    if (flag == "--mode") {
      opt.mode = v;
    } else if (flag == "--op") {
      opt.op = v;
    } else if (flag == "--shape") {
      auto parsed = load::arrival_shape_from_name(v);
      if (!parsed.has_value()) return usage();
      opt.schedule.shape = *parsed;
    } else if (flag == "--rate") {
      opt.schedule.rate_per_sec = parse_double(v);
    } else if (flag == "--duration") {
      opt.schedule.duration =
          static_cast<SimTime>(parse_double(v) * kNanosPerSec);
    } else if (flag == "--clients") {
      opt.schedule.clients = static_cast<std::uint32_t>(parse_long(v));
    } else if (flag == "--seed") {
      opt.schedule.seed = static_cast<std::uint64_t>(parse_long(v));
    } else if (flag == "--timeout") {
      opt.op_timeout = millis(parse_long(v));
    } else if (flag == "--burst-mult") {
      opt.schedule.burst_multiplier = parse_double(v);
    } else if (flag == "--burst-period-ms") {
      opt.schedule.burst_period = millis(parse_long(v));
    } else if (flag == "--burst-len-ms") {
      opt.schedule.burst_length = millis(parse_long(v));
    } else if (flag == "--f") {
      opt.f = static_cast<std::uint32_t>(parse_long(v));
    } else if (flag == "--base-port") {
      opt.base_port = static_cast<std::uint16_t>(parse_long(v));
    } else if (flag == "--out") {
      opt.out_dir = v;
    } else if (flag == "--bench") {
      opt.bench = v;
    } else if (flag == "--name") {
      opt.name = v;
    } else if (flag == "--deploy") {
      opt.deploy = v;
    } else if (flag == "--sweep") {
      for (const char* p = v; *p != '\0';) {
        char* end = nullptr;
        double rate = std::strtod(p, &end);
        if (end == p) break;
        if (rate > 0) opt.sweep.push_back(rate);
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (flag == "--sweep-burst") {
      for (const char* p = v; *p != '\0';) {
        char* end = nullptr;
        double mult = std::strtod(p, &end);
        if (end == p) break;
        if (mult > 0) opt.sweep_burst.push_back(mult);
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (flag == "--alarm-pct") {
      opt.alarm_pct = static_cast<int>(parse_long(v));
    } else if (flag == "--proactive-period") {
      opt.proactive_period_ms = parse_long(v);
    } else {
      return usage();
    }
  }
  if (opt.mode != "socket" && opt.mode != "sim") return usage();
  if (opt.op != "write" && opt.op != "update" && opt.op != "mixed") {
    return usage();
  }

  // A sweep is either over rates (--sweep) or, for the alarm-storm bench,
  // over burst multipliers at a fixed base rate (--sweep-burst).
  struct Planned {
    std::string name;
    load::ScheduleOptions schedule;
  };
  std::vector<Planned> runs;
  if (!opt.sweep_burst.empty()) {
    for (double mult : opt.sweep_burst) {
      load::ScheduleOptions schedule = opt.schedule;
      schedule.shape = load::ArrivalShape::kBurst;
      schedule.burst_multiplier = mult;
      runs.push_back({opt.name + "@burst" +
                          std::to_string(static_cast<long>(mult)) + "x",
                      schedule});
    }
  } else {
    std::vector<double> rates = opt.sweep;
    if (rates.empty()) rates.push_back(opt.schedule.rate_per_sec);
    for (double rate : rates) {
      load::ScheduleOptions schedule = opt.schedule;
      schedule.rate_per_sec = rate;
      runs.push_back(
          {opt.name + "@" + std::to_string(static_cast<long>(rate)),
           schedule});
    }
  }

  load::LoadReport report(opt.bench);
  bool any_zero = false;
  try {
    std::unique_ptr<SocketHarness> harness;
    if (opt.mode == "socket") {
      harness = std::make_unique<SocketHarness>(opt);
      if (!harness->warm_up()) {
        std::fprintf(stderr,
                     "load_openloop: replica group never became live\n");
        return 1;
      }
    }
    for (const Planned& planned : runs) {
      load::RunRecord record =
          opt.mode == "socket" ? harness->run(planned.name, planned.schedule)
                               : run_sim(opt, planned.name, planned.schedule);
      load::LoadReport::print(record);
      if (record.stats.ok == 0) any_zero = true;
      report.add(std::move(record));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_openloop: %s\n", e.what());
    return 1;
  }
  report.write(opt.out_dir);
  if (any_zero) {
    std::fprintf(stderr, "load_openloop: a run completed zero operations\n");
    return 1;
  }
  return 0;
}
