// google-benchmark microbenchmarks of the real component costs.
//
// These back the calibration in src/sim/cost_model.h (see EXPERIMENTS.md):
// the virtual-time constants were chosen from these measured costs scaled
// to the paper's 2.27 GHz Xeon E5520 / Java 7 testbed.
#include <benchmark/benchmark.h>

#include "bft/messages.h"
#include "core/push_voter.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/sha256.h"
#include "scada/handlers.h"
#include "scada/master.h"
#include "scada/messages.h"
#include "scada/storage.h"

namespace {

using namespace ss;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_ScadaMessageEncode(benchmark::State& state) {
  scada::ItemUpdate update;
  update.ctx.op = OpId{123};
  update.ctx.cid = ConsensusId{45};
  update.ctx.timestamp = millis(10);
  update.item = ItemId{7};
  update.value = scada::Variant{230.5};
  scada::ScadaMessage msg{update};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scada::encode_message(msg));
  }
}
BENCHMARK(BM_ScadaMessageEncode);

void BM_ScadaMessageDecode(benchmark::State& state) {
  scada::ItemUpdate update;
  update.item = ItemId{7};
  update.value = scada::Variant{230.5};
  Bytes encoded = scada::encode_message(scada::ScadaMessage{update});
  for (auto _ : state) {
    benchmark::DoNotOptimize(scada::decode_message(encoded));
  }
}
BENCHMARK(BM_ScadaMessageDecode);

void BM_BatchEncodeDecode(benchmark::State& state) {
  bft::Batch batch;
  batch.timestamp = millis(5);
  for (int i = 0; i < state.range(0); ++i) {
    bft::ClientRequest req;
    req.client = ClientId{1};
    req.sequence = RequestId{static_cast<std::uint64_t>(i)};
    req.payload = Bytes(64, 0x5a);
    req.auth.assign(4, crypto::Digest{});
    batch.requests.push_back(std::move(req));
  }
  for (auto _ : state) {
    Bytes encoded = batch.encode();
    benchmark::DoNotOptimize(bft::Batch::decode(encoded));
  }
}
BENCHMARK(BM_BatchEncodeDecode)->Arg(1)->Arg(16)->Arg(64);

void BM_HandlerChainUpdate(benchmark::State& state) {
  scada::HandlerChain chain;
  chain.emplace<scada::ScaleHandler>(1.5, 0.0);
  chain.emplace<scada::DeadbandHandler>(0.0);
  chain.emplace<scada::MonitorHandler>(
      scada::MonitorHandler::Condition::kAbove, 100.0);
  scada::HandlerContext ctx{ItemId{1}, "item", millis(1), OpId{1}};
  std::vector<scada::Event> events;
  double v = 0;
  for (auto _ : state) {
    scada::Variant value{v};
    v += 1.0;
    chain.run_update(ctx, value, events);
    events.clear();
  }
}
BENCHMARK(BM_HandlerChainUpdate);

void BM_StorageAppend(benchmark::State& state) {
  scada::EventStorage storage(4096);
  scada::Event event;
  event.item = ItemId{1};
  event.code = "MONITOR_TRIGGER";
  event.message = "monitor condition met on item grid/feeder";
  event.value = scada::Variant{123.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage.append(event));
  }
}
BENCHMARK(BM_StorageAppend);

void BM_MasterItemUpdate(benchmark::State& state) {
  scada::MasterOptions options;
  options.deterministic = true;
  options.storage_retention = 4096;
  scada::ScadaMaster master(std::move(options));
  ItemId item = master.add_item("grid/feeder");
  master.handlers(item).emplace<scada::MonitorHandler>(
      scada::MonitorHandler::Condition::kAbove, 1e12);
  master.handle(
      scada::ScadaMessage{scada::Subscribe{scada::Channel::kDa, ItemId{0},
                                           "hmi"}},
      scada::MsgContext{}, "hmi");
  master.set_da_sink([](const std::string&, const scada::ScadaMessage&) {});
  master.set_ae_sink([](const std::string&, const scada::ScadaMessage&) {});

  scada::ItemUpdate update;
  update.item = item;
  scada::MsgContext ctx;
  double v = 0;
  for (auto _ : state) {
    update.value = scada::Variant{v};
    ctx.op = OpId{static_cast<std::uint64_t>(v)};
    ctx.timestamp = static_cast<SimTime>(v) + 1;
    v += 1.0;
    master.handle(scada::ScadaMessage{update}, ctx, "frontend");
  }
}
BENCHMARK(BM_MasterItemUpdate);

void BM_PushVoterOffer(benchmark::State& state) {
  GroupConfig group = GroupConfig::for_f(1);
  std::uint64_t delivered = 0;
  core::PushVoter voter(group,
                        [&](const scada::ScadaMessage&) { ++delivered; });
  scada::ItemUpdate update;
  update.item = ItemId{1};
  std::uint64_t op = 0;
  for (auto _ : state) {
    update.ctx.op = OpId{++op};
    Bytes payload = scada::encode_message(scada::ScadaMessage{update});
    voter.offer(ReplicaId{0}, payload);
    voter.offer(ReplicaId{1}, payload);
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_PushVoterOffer);

void BM_MasterSnapshot(benchmark::State& state) {
  scada::MasterOptions options;
  options.deterministic = true;
  options.storage_retention = 1024;
  scada::ScadaMaster master(std::move(options));
  for (int i = 0; i < state.range(0); ++i) {
    master.add_item("item/" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(master.snapshot());
  }
}
BENCHMARK(BM_MasterSnapshot)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
